"""Parameter-sweep harness.

Small, explicit helper for the one-dimensional sweeps the paper's
evaluation is built from: vary one knob, re-solve the game, collect named
metrics into a :class:`~repro.analysis.series.ResultTable`.

Two flavours:

* :func:`sweep` — call an arbitrary ``evaluate`` function per knob
  value (the original, fully general harness);
* :func:`scenario_sweep` — build a
  :class:`~repro.serving.ScenarioSpec` per knob value and serve the
  whole grid through a :class:`~repro.serving.ServingEngine`, so
  repeated sweeps hit the scenario cache, nearby points warm-start
  each other, and a ``max_workers > 1`` engine fans the grid out over
  a process pool.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Union

from ..exceptions import ConvergenceError
from .series import ResultTable

Number = Union[int, float]

__all__ = ["sweep", "scenario_sweep"]


def sweep(title: str, knob_name: str, values: Iterable[Number],
          evaluate: Callable[[Number], Dict[str, Number]],
          notes: str = "") -> ResultTable:
    """Run ``evaluate`` at each knob value and tabulate the metrics.

    Args:
        title: Table title.
        knob_name: Header of the swept-parameter column.
        values: Knob values, in order.
        evaluate: Maps a knob value to a ``{metric: value}`` dict; every
            call must return the same keys (checked).
        notes: Optional caveats for the rendered table.

    Returns:
        A :class:`ResultTable` with one row per knob value.
    """
    values = list(values)
    if not values:
        raise ValueError("sweep needs at least one knob value")
    first = evaluate(values[0])
    columns = [knob_name] + list(first.keys())
    table = ResultTable(title=title, columns=columns, notes=notes)
    table.add_row(values[0], *first.values())
    for v in values[1:]:
        metrics = evaluate(v)
        if list(metrics.keys()) != columns[1:]:
            raise ValueError(
                f"evaluate returned inconsistent metrics at {knob_name}={v}: "
                f"{list(metrics.keys())} vs {columns[1:]}")
        table.add_row(v, *metrics.values())
    return table


def scenario_sweep(title: str, knob_name: str, values: Iterable[Number],
                   make_spec: Callable[[Number], "object"],
                   metrics: Callable[[Number, "object"],
                                     Dict[str, Number]],
                   engine: Optional["object"] = None,
                   notes: str = "") -> ResultTable:
    """Run a sweep through the batch equilibrium-serving engine.

    Args:
        title: Table title.
        knob_name: Header of the swept-parameter column.
        values: Knob values, in order.
        make_spec: Maps a knob value to a
            :class:`~repro.serving.ScenarioSpec`.
        metrics: Maps ``(knob value, equilibrium)`` to a
            ``{metric: value}`` dict; every call must return the same
            keys (checked, like :func:`sweep`).
        engine: A :class:`~repro.serving.ServingEngine` to serve the
            grid from. Passing a shared engine across sweeps reuses its
            cache; ``None`` builds a throwaway serial engine whose
            solves are bit-identical to calling the solvers directly
            (warm starts and guards off).
        notes: Optional caveats for the rendered table.

    Returns:
        A :class:`ResultTable` with one row per knob value.

    Raises:
        ConvergenceError: If any scenario in the grid failed to solve
            (per-scenario errors are collected into one message).
    """
    from ..serving import ServingEngine  # local: keep import cycle-free

    values = list(values)
    if not values:
        raise ValueError("scenario_sweep needs at least one knob value")
    if engine is None:
        engine = ServingEngine(max_workers=0, warm_start=False,
                               use_guard=False)
    specs = [make_spec(v) for v in values]
    results = engine.serve_batch(specs)
    failed = [(v, r.error) for v, r in zip(values, results)
              if not r.ok]
    if failed:
        detail = "; ".join(f"{knob_name}={v}: {err}"
                           for v, err in failed[:5])
        raise ConvergenceError(
            f"{len(failed)}/{len(values)} sweep points failed: {detail}")
    table: Optional[ResultTable] = None
    columns: List[str] = []
    for v, result in zip(values, results):
        row = metrics(v, result.value)
        if table is None:
            columns = [knob_name] + list(row.keys())
            table = ResultTable(title=title, columns=columns,
                                notes=notes)
        elif list(row.keys()) != columns[1:]:
            raise ValueError(
                f"metrics returned inconsistent keys at {knob_name}={v}: "
                f"{list(row.keys())} vs {columns[1:]}")
        table.add_row(v, *row.values())
    return table
