"""Parameter-sweep harness.

Small, explicit helper for the one-dimensional sweeps the paper's
evaluation is built from: vary one knob, re-solve the game, collect named
metrics into a :class:`~repro.analysis.series.ResultTable`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Union

from .series import ResultTable

Number = Union[int, float]

__all__ = ["sweep"]


def sweep(title: str, knob_name: str, values: Iterable[Number],
          evaluate: Callable[[Number], Dict[str, Number]],
          notes: str = "") -> ResultTable:
    """Run ``evaluate`` at each knob value and tabulate the metrics.

    Args:
        title: Table title.
        knob_name: Header of the swept-parameter column.
        values: Knob values, in order.
        evaluate: Maps a knob value to a ``{metric: value}`` dict; every
            call must return the same keys (checked).
        notes: Optional caveats for the rendered table.

    Returns:
        A :class:`ResultTable` with one row per knob value.
    """
    values = list(values)
    if not values:
        raise ValueError("sweep needs at least one knob value")
    first = evaluate(values[0])
    columns = [knob_name] + list(first.keys())
    table = ResultTable(title=title, columns=columns, notes=notes)
    table.add_row(values[0], *first.values())
    for v in values[1:]:
        metrics = evaluate(v)
        if list(metrics.keys()) != columns[1:]:
            raise ValueError(
                f"evaluate returned inconsistent metrics at {knob_name}={v}: "
                f"{list(metrics.keys())} vs {columns[1:]}")
        table.add_row(v, *metrics.values())
    return table
