"""Markdown report generation: every experiment in one document.

``repro-mining report --output report.md`` (or :func:`build_report`)
runs a set of experiments and renders them into a single markdown file:
a table of contents, each result table as a markdown table, numeric
columns summarized with sparklines, and the experiment notes as captions.
The output is self-contained documentation of a run — the generated
counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Union)

from ..exceptions import ConfigurationError
from .series import ResultTable, sparkline

__all__ = ["render_markdown", "render_convergence", "render_telemetry",
           "build_report"]


def _format_cell(value: object) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    magnitude = abs(value)
    if value != 0 and (magnitude >= 1e5 or magnitude < 1e-3):
        return f"{value:.3e}"
    return f"{value:.4f}"


def render_markdown(table: ResultTable, heading_level: int = 2) -> str:
    """Render one :class:`ResultTable` as a markdown section."""
    lines = [f"{'#' * heading_level} {table.title}", ""]
    header = "| " + " | ".join(str(c) for c in table.columns) + " |"
    divider = "|" + "|".join("---" for _ in table.columns) + "|"
    lines += [header, divider]
    for row in table.rows:
        lines.append("| " + " | ".join(_format_cell(v) for v in row)
                     + " |")
    # Sparkline summary of the numeric columns (skip the knob column).
    sparks: List[str] = []
    for name in table.columns[1:]:
        values = table.column(name)
        if all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in values) and len(values) > 1:
            sparks.append(f"`{name}` {sparkline(values)}")
    if sparks:
        lines += ["", "trends: " + " · ".join(sparks)]
    if table.notes:
        lines += ["", f"> {table.notes}"]
    lines.append("")
    return "\n".join(lines)


def render_convergence(report: Any, label: str = "") -> str:
    """Render solver convergence diagnostics as a one-line markdown note.

    Accepts either a :class:`~repro.game.diagnostics.ConvergenceReport`
    or its :meth:`~repro.game.diagnostics.ConvergenceReport.to_dict`
    payload (e.g. as persisted by the serving cache's disk layer), so
    report sections can annotate tables with solver behavior without
    re-running anything.
    """
    payload = report if isinstance(report, dict) else report.to_dict()
    status = "converged" if payload.get("converged") else "DID NOT converge"
    parts = [f"`{label}`" if label else "solver", status,
             f"in {payload.get('iterations', '?')} iterations",
             f"(residual {_format_cell(payload.get('residual', 0.0))}, "
             f"tol {_format_cell(payload.get('tolerance', 0.0))})"]
    history = payload.get("history") or []
    if len(history) > 1:
        parts.append(sparkline(history))
    return "> " + " ".join(parts)


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ", ".join(f"{k}={v}"
                           for k, v in sorted(labels.items())) + "}"


def render_telemetry(registry: Any, heading_level: int = 2,
                     title: str = "Telemetry") -> str:
    """Render a metrics snapshot as a markdown section.

    Accepts either a live
    :class:`~repro.telemetry.metrics.MetricsRegistry` or its
    :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` payload,
    so persisted snapshots render identically to live ones. Counters
    and gauges become one table; histograms another, summarized by
    count, mean, and the p50/p95/p99 estimates.
    """
    snapshot = (registry if isinstance(registry, dict)
                else registry.snapshot())
    lines = [f"{'#' * heading_level} {title}", ""]
    scalars, histograms = [], []
    for name in sorted(snapshot):
        family = snapshot[name]
        for child in family["values"]:
            label = name + _label_suffix(child.get("labels", {}))
            if family["kind"] == "histogram":
                count = child.get("count", 0)
                mean = (child.get("sum", 0.0) / count if count
                        else float("nan"))
                histograms.append(
                    (label, count, mean, child.get("p50"),
                     child.get("p95"), child.get("p99")))
            else:
                scalars.append((label, family["kind"],
                                child.get("value", 0.0)))
    if scalars:
        lines += ["| metric | kind | value |", "|---|---|---|"]
        lines += [f"| `{label}` | {kind} | {_format_cell(value)} |"
                  for label, kind, value in scalars]
        lines.append("")
    if histograms:
        lines += ["| histogram | count | mean | p50 | p95 | p99 |",
                  "|---|---|---|---|---|---|"]
        lines += ["| `{}` | {} | {} | {} | {} | {} |".format(
            label, count, *(_format_cell(v)
                            for v in (mean, p50, p95, p99)))
            for label, count, mean, p50, p95, p99 in histograms]
        lines.append("")
    if not scalars and not histograms:
        lines += ["(no metrics recorded)", ""]
    return "\n".join(lines)


def build_report(experiments: Dict[str, Callable[[], ResultTable]],
                 path: Optional[Union[str, Path]] = None,
                 title: str = "repro-mining report",
                 ids: Optional[Iterable[str]] = None) -> str:
    """Run experiments and assemble the markdown report.

    Args:
        experiments: Mapping of experiment id to runner (usually
            :data:`repro.cli.EXPERIMENTS`).
        path: Optional output file; the document is returned either way.
        title: Top-level heading.
        ids: Subset of experiment ids to include (default: all, sorted).

    Returns:
        The markdown document.
    """
    selected = sorted(experiments) if ids is None else list(ids)
    unknown = [i for i in selected if i not in experiments]
    if unknown:
        raise ConfigurationError(f"unknown experiment ids: {unknown}")
    sections = [f"# {title}", ""]
    sections.append("Contents: " + " · ".join(
        f"[{i}](#{i})" for i in selected))
    sections.append("")
    for exp_id in selected:
        table = experiments[exp_id]()
        sections.append(f'<a id="{exp_id}"></a>')
        sections.append(render_markdown(table))
    document = "\n".join(sections)
    if path is not None:
        Path(path).write_text(document)
    return document
