"""Ablation studies for the design choices DESIGN.md calls out.

* ABL1 — GNEP solver: shadow-price decomposition vs joint-VI extragradient
  (agreement and cost).
* ABL2 — dynamic-scenario satisfaction-weight model: the paper's 0.5/0.5
  mixture vs ``h``-consistent vs our mechanistic capacity/service models.
* ABL3 — Eq. (9)'s marginal transfer semantics vs the physical
  independent-transfer process (Jensen gap measured by simulation).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..blockchain import RoundSimulator
from ..core import (DynamicGame, solve_dynamic_equilibrium,
                    solve_standalone_equilibrium,
                    solve_standalone_extragradient)
from ..core.winning import w_connected
from ..population import GaussianPopulation
from .experiments import DEFAULTS, PaperSetup
from .series import ResultTable

__all__ = ["ablation_gnep_solvers", "ablation_dynamic_weights",
           "ablation_transfer_semantics"]


def ablation_gnep_solvers(e_max_values: Optional[Sequence[float]] = None,
                          setup: PaperSetup = DEFAULTS) -> ResultTable:
    """ABL1: the two GNEP solvers must agree; the decomposition is faster."""
    if e_max_values is None:
        e_max_values = [40.0, 80.0, 120.0]
    prices = setup.prices()
    table = ResultTable(
        title="ABL1 — GNEP variational-equilibrium solvers",
        columns=["E_max", "E_decomp", "E_extragrad", "max_profile_diff",
                 "nu_decomp", "nu_extragrad", "t_decomp_s", "t_extragrad_s"],
        notes="Both solvers target the same variational equilibrium; the "
              "shadow-price decomposition converges orders of magnitude "
              "faster.")
    for e_max in e_max_values:
        params = setup.standalone(budget=10 * setup.budget, e_max=e_max)
        t0 = time.perf_counter()
        dec = solve_standalone_equilibrium(params, prices)
        t1 = time.perf_counter()
        ext = solve_standalone_extragradient(params, prices, tol=1e-8,
                                             initial=(dec.e * 1.05,
                                                      dec.c * 0.95))
        t2 = time.perf_counter()
        diff = max(float(np.max(np.abs(dec.e - ext.e))),
                   float(np.max(np.abs(dec.c - ext.c))))
        table.add_row(e_max, dec.total_edge, ext.total_edge, diff,
                      dec.nu, ext.nu, t1 - t0, t2 - t1)
    return table


def ablation_dynamic_weights(mu: float = 5.0, sigma: float = 2.0,
                             setup: PaperSetup = DEFAULTS) -> ResultTable:
    """ABL2: how the satisfaction-weight model changes the dynamic
    equilibrium and the population-uncertainty conclusion."""
    prices = setup.prices()
    table = ResultTable(
        title="ABL2 — dynamic-scenario satisfaction-weight models",
        columns=["weights", "e_star", "c_star", "expected_Ne",
                 "overload_prob", "converged"],
        notes="'capacity'/'service' derive satisfaction from E_max "
              "mechanistically; 'paper' is Eq. 26's 0.5/0.5; 'h' matches "
              "Section IV-A.")
    for weights in ("capacity", "service", "paper", "h"):
        game = DynamicGame(GaussianPopulation(mu, sigma),
                           reward=setup.reward, fork_rate=setup.beta,
                           budget=setup.budget, e_max=setup.e_max,
                           h=setup.h, weights=weights)
        eq = solve_dynamic_equilibrium(game, prices)
        table.add_row(weights, eq.e, eq.c, eq.expected_edge_total,
                      eq.expected_overload, eq.report.converged)
    return table


def ablation_transfer_semantics(rounds: int = 120000,
                                setup: PaperSetup = DEFAULTS,
                                seed: int = 0) -> ResultTable:
    """ABL3: Eq. (9) is the *marginal* law of total expectation; the
    physical process where every miner's transfer is independent differs
    by a small Jensen gap, quantified here."""
    rng = np.random.default_rng(seed)
    e = np.array([25.0, 20.0, 30.0, 15.0, 25.0])
    c = np.array([100.0, 110.0, 90.0, 120.0, 95.0])
    model = w_connected(e, c, setup.beta, setup.h)
    table = ResultTable(
        title="ABL3 — Eq. (9) vs physical transfer processes (miner 0)",
        columns=["policy", "empirical_W0", "model_W0", "abs_gap"],
        notes="'marginal' reproduces Eq. (9) exactly (sampling error "
              "only); 'independent' is the physical joint process, whose "
              "Jensen gap Eq. (9) ignores.")
    for policy in ("marginal", "independent"):
        sim = RoundSimulator(e, c, setup.beta, h=setup.h,
                             seed=int(rng.integers(2**31)))
        tally = sim.run(rounds, transfer=policy,
                        measured=0 if policy == "marginal" else None)
        w0 = float(tally.win_rates[0])
        table.add_row(policy, w0, float(model[0]), abs(w0 - model[0]))
    return table
