"""Serialization and comparison of experiment results.

ResultTables round-trip through JSON (full fidelity: title, columns,
rows, notes) and export to CSV, so experiment outputs can be archived and
regression-compared across runs — the library-hygiene counterpart of
EXPERIMENTS.md's paper-vs-measured log.

* :func:`to_json` / :func:`from_json` — lossless round-trip;
* :func:`to_csv` — spreadsheet-friendly export;
* :func:`save` / :func:`load` — file-level helpers (format by suffix);
* :func:`compare` — cell-wise diff of two tables with a relative
  tolerance, returning the mismatches (empty = regression passed).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Tuple, Union

from ..exceptions import ConfigurationError
from .series import ResultTable

__all__ = ["to_json", "from_json", "to_csv", "save", "load", "compare"]

_SCHEMA_VERSION = 1


def to_json(table: ResultTable, indent: int = 2) -> str:
    """Serialize a table to a JSON document."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": table.notes,
    }
    return json.dumps(payload, indent=indent)


def from_json(document: str) -> ResultTable:
    """Reconstruct a table from :func:`to_json` output."""
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as ex:
        raise ConfigurationError(f"invalid result JSON: {ex}") from ex
    for key in ("title", "columns", "rows"):
        if key not in payload:
            raise ConfigurationError(f"result JSON missing {key!r}")
    table = ResultTable(title=payload["title"],
                        columns=list(payload["columns"]),
                        notes=payload.get("notes", ""))
    for row in payload["rows"]:
        table.add_row(*row)
    return table


def to_csv(table: ResultTable) -> str:
    """Export the rows as CSV (title/notes go into comment lines)."""
    buffer = io.StringIO()
    buffer.write(f"# {table.title}\n")
    if table.notes:
        buffer.write(f"# note: {table.notes}\n")
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def save(table: ResultTable, path: Union[str, Path]) -> Path:
    """Write a table to disk; format chosen by suffix (.json / .csv)."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(to_json(table))
    elif path.suffix == ".csv":
        path.write_text(to_csv(table))
    else:
        raise ConfigurationError(
            f"unsupported result format {path.suffix!r}; use .json or "
            ".csv")
    return path


def load(path: Union[str, Path]) -> ResultTable:
    """Load a table saved by :func:`save` (JSON only — CSV drops types)."""
    path = Path(path)
    if path.suffix != ".json":
        raise ConfigurationError("only .json results can be loaded back")
    return from_json(path.read_text())


def compare(actual: ResultTable, expected: ResultTable,
            rel_tol: float = 1e-6) -> List[Tuple[int, int, object, object]]:
    """Cell-wise diff of two tables.

    Returns a list of ``(row, col, actual_value, expected_value)``
    mismatches; numeric cells compare with relative tolerance
    ``rel_tol``, everything else exactly. Structural differences (shape,
    columns) raise.
    """
    if actual.columns != expected.columns:
        raise ConfigurationError(
            f"column mismatch: {actual.columns} vs {expected.columns}")
    if len(actual.rows) != len(expected.rows):
        raise ConfigurationError(
            f"row-count mismatch: {len(actual.rows)} vs "
            f"{len(expected.rows)}")
    mismatches: List[str] = []
    for i, (row_a, row_e) in enumerate(zip(actual.rows, expected.rows)):
        for j, (a, e) in enumerate(zip(row_a, row_e)):
            if isinstance(a, bool) or isinstance(e, bool) or \
                    not isinstance(a, (int, float)) or \
                    not isinstance(e, (int, float)):
                if a != e:
                    mismatches.append((i, j, a, e))
                continue
            scale = max(abs(a), abs(e), 1e-300)
            if abs(a - e) > rel_tol * scale and abs(a - e) > 1e-12:
                mismatches.append((i, j, a, e))
    return mismatches
