"""Result containers for experiments: tables and series with ASCII output.

The paper's figures are line plots; without a plotting dependency we
regenerate each as a :class:`ResultTable` whose rows are the plotted
points. Benchmarks print these tables, and EXPERIMENTS.md records the
shape checks they support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

Number = Union[int, float]

__all__ = ["ResultTable", "render", "sparkline"]


@dataclass
class ResultTable:
    """A titled table of experiment results.

    Attributes:
        title: Table/figure identifier, e.g. ``"Fig. 4 — ..."``.
        columns: Column headers.
        rows: Data rows (aligned with ``columns``).
        notes: Free-form caveats/interpretation appended when rendering.
    """

    title: str
    columns: List[str]
    rows: List[Sequence[Number]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Number) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns")
        self.rows.append(tuple(values))

    def column(self, name: str) -> List[Number]:
        """Extract one column by header name."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}; have "
                           f"{self.columns}") from None
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:
        return render(self)

    def assert_monotone(self, name: str, increasing: bool = True,
                        strict: bool = False, tol: float = 1e-9) -> bool:
        """Whether a column is monotone — the primary "shape" check."""
        vals = self.column(name)
        pairs = zip(vals, vals[1:])
        if increasing:
            return all((b - a) > tol if strict else (b - a) >= -tol
                       for a, b in pairs)
        return all((a - b) > tol if strict else (a - b) >= -tol
                   for a, b in pairs)


def _format(value: object) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.4e}"
    return f"{value:.4f}"


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[Number]) -> str:
    """Render a numeric series as a unicode sparkline.

    Useful for eyeballing a swept column in terminal output::

        >>> sparkline([1, 2, 4, 8, 4, 2, 1])
        '▁▂▄█▄▂▁'

    Constant series render as a flat mid-level line; non-numeric values
    are rejected.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_BLOCKS[3] * len(vals)
    span = hi - lo
    chars: List[str] = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1) + 0.5)
        chars.append(_SPARK_BLOCKS[idx])
    return "".join(chars)


def render(table: ResultTable) -> str:
    """Render a :class:`ResultTable` as aligned ASCII."""
    cells = [[str(c) for c in table.columns]]
    for row in table.rows:
        cells.append([_format(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(table.columns))]
    lines = [table.title, "-" * len(table.title)]
    header, *body = cells
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    if table.notes:
        lines.append("")
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)
