"""Extension experiments beyond the paper's evaluation.

* **EXT1 — rent dissipation / price of anarchy**: how much of the mining
  reward the equilibrium burns on real compute, across rewards and modes.
* **EXT2 — fictitious play**: belief-based learning converges to the same
  unique NE as best-response iteration (independent validation of
  Theorem 2).
* **EXT3 — difficulty retargeting**: coupling equilibrium demand to a
  PoW difficulty controller keeps block intervals pinned while demand
  shifts with prices.
* **EXT4 — equilibrium elasticities**: differential sensitivity of the
  follower equilibrium to every primitive.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..blockchain import Difficulty
from ..blockchain.difficulty import RetargetPolicy, simulate_retargeting
from ..core import (Prices, homogeneous, solve_connected_equilibrium,
                    solve_stackelberg)
from ..core.social import welfare_report
from ..core.verification import nikaido_isoda_residual
from ..learning.fictitious import fictitious_play
from .experiments import DEFAULTS, PaperSetup
from .sensitivity import equilibrium_elasticities
from .series import ResultTable
from .sweep import Number, sweep

__all__ = ["ext1_rent_dissipation", "ext2_fictitious_play",
           "ext3_difficulty_retargeting", "ext4_elasticities",
           "ext5_topology_calibration", "ext6_edge_competition",
           "ext7_optimal_block_size", "ext8_risk_aversion",
           "ext9_private_budgets"]


def ext1_rent_dissipation(rewards: Optional[Sequence[float]] = None,
                          setup: PaperSetup = DEFAULTS) -> ResultTable:
    """EXT1: welfare decomposition of the Stackelberg outcome vs R.

    Social welfare is ``R - C_e E - C_c C`` (payments are transfers);
    the planner's limit is dissipation → 0, so the measured dissipation
    IS the efficiency loss of decentralized PoW mining in this market.
    """
    if rewards is None:
        rewards = [500.0, 1000.0, 2000.0, 4000.0]

    def evaluate(reward: Number) -> Dict[str, Number]:
        params = homogeneous(setup.n, setup.budget, reward=reward,
                             fork_rate=setup.beta, h=setup.h,
                             edge_cost=setup.edge_cost,
                             cloud_cost=setup.cloud_cost)
        se = solve_stackelberg(params)
        rep = welfare_report(se.miners)
        return {
            "P_e_star": se.prices.p_e,
            "P_c_star": se.prices.p_c,
            "social_welfare": rep.social_welfare,
            "miner_surplus": rep.miner_surplus,
            "sp_profit": rep.esp_profit + rep.csp_profit,
            "dissipation": rep.dissipation,
            "accounting_residual": rep.transfers_balance,
        }

    return sweep("EXT1 — welfare and rent dissipation at the SE vs reward",
                 "R", rewards, evaluate,
                 notes="Dissipation = resource cost / reward; the "
                       "accounting residual checks SW == miners + SPs "
                       "(Theorem 1 makes it 0).")


def ext2_fictitious_play(setup: PaperSetup = DEFAULTS) -> ResultTable:
    """EXT2: fictitious play vs best-response iteration on NEP_MINER."""
    params = setup.connected()
    prices = setup.prices()
    eq = solve_connected_equilibrium(params, prices)
    table = ResultTable(
        title="EXT2 — fictitious play converges to the unique NE",
        columns=["rounds", "E_fp", "E_br", "profile_gap", "ni_residual"],
        notes="Belief-averaging fictitious play reaches the Theorem-2 "
              "equilibrium; the Nikaido-Isoda residual certifies the "
              "distance to equilibrium at each checkpoint.")
    for rounds in (5, 20, 100, 400):
        fp = fictitious_play(params, prices, rounds=rounds)
        gap = max(float(np.max(np.abs(fp.e - eq.e))),
                  float(np.max(np.abs(fp.c - eq.c))))
        probe = type(eq)(e=fp.e, c=fp.c, params=params, prices=prices,
                         report=eq.report)
        table.add_row(rounds, float(np.sum(fp.e)), eq.total_edge, gap,
                      nikaido_isoda_residual(probe))
    return table


def ext3_difficulty_retargeting(setup: PaperSetup = DEFAULTS,
                                seed: int = 0) -> ResultTable:
    """EXT3: retargeting absorbs equilibrium demand shifts.

    The CSP halves then doubles its price; equilibrium total demand S*
    moves accordingly, and the difficulty controller returns the mean
    block interval to target within a few epochs.
    """
    params = setup.connected()
    price_path = ([Prices(setup.p_e, setup.p_c)] * 6
                  + [Prices(setup.p_e, setup.p_c / 2)] * 6
                  + [Prices(setup.p_e, setup.p_c * 1.5)] * 6)
    demand = [solve_connected_equilibrium(params, p).total
              for p in price_path]
    policy = RetargetPolicy(target_interval=600.0, epoch_blocks=64,
                            max_ratio=4.0)
    initial = Difficulty(unit_solve_time=600.0 * demand[0])
    history = simulate_retargeting(demand, policy, initial, seed=seed)
    table = ResultTable(
        title="EXT3 — difficulty retargeting under equilibrium demand "
              "shifts",
        columns=["epoch", "total_units", "difficulty",
                 "mean_interval_s", "target_s"],
        notes="Price changes move S*; the controller moves difficulty, "
              "keeping the interval near 600 s.")
    for i, rec in enumerate(history):
        table.add_row(i, rec.total_units, rec.difficulty,
                      rec.mean_interval, 600.0)
    return table


def ext5_topology_calibration(block_sizes: Optional[Sequence[float]] = None,
                              n_nodes: int = 30,
                              setup: PaperSetup = DEFAULTS,
                              seed: int = 0) -> ResultTable:
    """EXT5: physical topology + block size → β → equilibrium shift.

    Builds the Fig.-1 topology, computes propagation delays by gossip,
    calibrates ``D_avg``/``β`` per block size, and re-solves the miner
    equilibrium: bigger blocks make cloud mining riskier, pushing demand
    toward the edge.
    """
    from ..network import GossipModel, calibrate_game_delays, \
        edge_cloud_topology

    if block_sizes is None:
        block_sizes = [1e5, 1e6, 4e6, 1.6e7, 6.4e7]
    graph = edge_cloud_topology(n_nodes, seed=seed)

    def evaluate(block_size: Number) -> Dict[str, Number]:
        cal = calibrate_game_delays(graph, GossipModel(block_size=
                                                       block_size))
        params = homogeneous(setup.n, setup.budget, reward=setup.reward,
                             fork_rate=cal.fork_rate, h=setup.h,
                             edge_cost=setup.edge_cost,
                             cloud_cost=setup.cloud_cost,
                             d_avg=cal.d_avg)
        eq = solve_connected_equilibrium(params, setup.prices())
        return {
            "cloud_prop_s": cal.cloud_delay,
            "d_avg_s": cal.d_avg,
            "beta": cal.fork_rate,
            "E_total": eq.total_edge,
            "C_total": eq.total_cloud,
            "edge_share": eq.total_edge / eq.total,
        }

    return sweep("EXT5 — block size -> propagation -> fork rate -> "
                 "equilibrium", "block_bytes", block_sizes, evaluate,
                 notes="Physical calibration chain: bigger blocks "
                       "propagate slower, raising beta; miners hedge by "
                       "shifting demand to the edge.")


def ext6_edge_competition(counts: Optional[Sequence[int]] = None,
                          capacity_per_esp: float = 60.0,
                          setup: PaperSetup = DEFAULTS) -> ResultTable:
    """EXT6: what if several ESPs compete (the paper's single-ESP
    assumption relaxed)?

    Symmetric Bertrand–Edgeworth equilibria for m identical edge
    providers: with few providers the scarce joint capacity keeps the
    edge price at the market-clearing level; adding providers grows
    capacity, pushes the price toward cost, and transfers the edge
    premium from provider profits to miner surplus.
    """
    from ..core.multi_edge import (EdgeSupplier, MultiEdgeMarket,
                                   best_response_price, clear_market,
                                   symmetric_equilibrium)

    if counts is None:
        counts = [1, 2, 3, 4, 6, 8]
    market = MultiEdgeMarket(n=setup.n, reward=setup.reward,
                             beta=setup.beta, h=1.0, p_c=setup.p_c)

    def solve(m: int, capacity: float
              ) -> Tuple[float, float, float, bool]:
        if m == 1:
            suppliers = [EdgeSupplier(price=2.0, capacity=capacity,
                                      unit_cost=setup.edge_cost)]
            price = best_response_price(market, suppliers, 0)
            suppliers = [EdgeSupplier(price=price, capacity=capacity,
                                      unit_cost=setup.edge_cost)]
            clearing = clear_market(market, suppliers)
            return price, float(clearing.profits[0]), \
                float(clearing.sales[0]), True
        eq = symmetric_equilibrium(market, m, capacity, setup.edge_cost)
        return eq.price, eq.per_supplier_profit, \
            eq.per_supplier_sales, eq.verified

    ample_capacity = 2.0 * market.demand(
        max(setup.edge_cost, 0.5 * setup.p_c))

    def evaluate(m: Number) -> Dict[str, Number]:
        price_s, profit_s, sales_s, ok_s = solve(m, capacity_per_esp)
        price_a, profit_a, _, ok_a = solve(m, ample_capacity)
        return {
            "scarce_price": price_s,
            "scarce_industry_profit": profit_s * m,
            "scarce_total_units": sales_s * m,
            "ample_price": price_a,
            "ample_industry_profit": profit_a * m,
            "verified": ok_s and ok_a,
        }

    return sweep("EXT6 — edge competition: m identical ESPs "
                 f"(scarce capacity {capacity_per_esp}/ESP vs ample)",
                 "m", list(counts), evaluate,
                 notes="Scarce capacity: entry expands supply along the "
                       "demand curve — price falls, per-ESP profit falls, "
                       "miners buy more. Ample capacity: any m >= 2 "
                       "collapses to Bertrand (price = cost, zero "
                       "industry profit); the monopoly alone keeps the "
                       "cloud-exclusion price.")


def ext7_optimal_block_size(block_sizes: Optional[Sequence[float]] = None,
                            subsidy: float = 50.0,
                            tx_rate: float = 2.0,
                            n_nodes: int = 30,
                            seed: int = 0) -> ResultTable:
    """EXT7: the revenue-optimal block size.

    Bigger blocks pack more fees but propagate slower, raising the fork
    rate that the whole game prices. Expected revenue per (cloud-mined)
    block is

        (subsidy + fees(L)) · (1 - β(L)),

    with ``fees(L)`` from the mempool simulation and ``β(L)`` from the
    gossip-calibrated topology. Fees saturate once the block limit
    exceeds transaction demand while β keeps rising, so an interior
    optimum emerges.
    """
    from ..blockchain.transactions import TxArrivalProcess, \
        simulate_fee_revenue
    from ..network import GossipModel, calibrate_game_delays, \
        edge_cloud_topology

    if block_sizes is None:
        block_sizes = [1e5, 3e5, 6e5, 1e6, 2e6, 4e6, 8e6, 1.6e7, 3.2e7]
    graph = edge_cloud_topology(n_nodes, seed=seed)

    def evaluate(block_size: Number) -> Dict[str, Number]:
        cal = calibrate_game_delays(graph,
                                    GossipModel(block_size=block_size))
        process = TxArrivalProcess(rate=tx_rate, mean_size=500.0,
                                   median_fee_rate=2e-5, seed=seed)
        fees = simulate_fee_revenue(process, block_interval=600.0,
                                    blocks=40,
                                    max_block_bytes=block_size)
        expected = (subsidy + fees.mean_fees) * (1.0 - cal.fork_rate)
        return {
            "mean_fees": fees.mean_fees,
            "beta": cal.fork_rate,
            "expected_revenue": expected,
            "mempool_backlog": fees.backlog,
        }

    table = sweep("EXT7 — revenue-optimal block size "
                  f"(subsidy {subsidy}, {tx_rate} tx/s)", "block_bytes",
                  list(block_sizes), evaluate,
                  notes="Fees saturate once the limit exceeds tx demand "
                        "(~0.6 MB/block here) while the fork rate keeps "
                        "rising: expected revenue peaks at an interior "
                        "block size.")
    return table


def ext8_risk_aversion(risk_levels: Optional[Sequence[float]] = None,
                       setup: PaperSetup = None) -> ResultTable:
    """EXT8: risk aversion and mining pools.

    The paper's risk-neutral miners price only the expected reward; under
    CARA the Bernoulli mining lottery is discounted, demand shrinks, and
    for strong enough aversion full participation becomes unsustainable
    (miners exit). Reward-sharing pools cut the variance and restore both
    demand and participation — an equilibrium rationale for mining pools
    inside the paper's own offloading market.
    """
    from ..core.risk import RiskAverseGame, solve_risk_averse_equilibrium

    if setup is None:
        setup = PaperSetup(reward=1000.0)
    if risk_levels is None:
        risk_levels = [0.0, 0.001, 0.002, 0.005, 0.01]
    prices = setup.prices()

    def evaluate(a: Number) -> Dict[str, Number]:
        solo = solve_risk_averse_equilibrium(
            RiskAverseGame(n=setup.n, reward=setup.reward,
                           fork_rate=setup.beta, h=setup.h,
                           budget=setup.budget, risk_aversion=a,
                           pool_size=1), prices)
        # pool_size=2 keeps the pooled win probability m*W below 1 at
        # the symmetric point (m=n would clip it to 1 and kink the
        # objective — total variance elimination, degenerate incentives).
        pooled = solve_risk_averse_equilibrium(
            RiskAverseGame(n=setup.n, reward=setup.reward,
                           fork_rate=setup.beta, h=setup.h,
                           budget=setup.budget, risk_aversion=a,
                           pool_size=2), prices)
        return {
            "solo_active": solo.n_active,
            "solo_demand": solo.n_active * (solo.e + solo.c),
            "solo_utility": solo.utility,
            "pool_active": pooled.n_active,
            "pool_demand": pooled.n_active * (pooled.e + pooled.c),
        }

    return sweep("EXT8 — risk aversion, participation, and mining pools",
                 "risk_a", list(risk_levels), evaluate,
                 notes="CARA coefficient a: demand and participation "
                       "shrink with a for solo miners; a 2-miner "
                       "reward-sharing pool halves the payout variance "
                       "and restores both.")


def ext9_private_budgets(setup: PaperSetup = None) -> ResultTable:
    """EXT9: the value of budget information.

    Budgets as private types (Section VII-3's incomplete-information
    motivation, solved exactly): the symmetric Bayesian Nash equilibrium
    hedges against the opponent-type distribution, while the
    full-information benchmark re-solves the heterogeneous NE at every
    realized type profile (enumerated with its multinomial weight). The
    gap in expected utility per type is the value of information.
    """
    import itertools
    import math

    from ..core import GameParameters, solve_connected_equilibrium
    from ..core.bayesian import (BayesianMinerGame, BudgetType,
                                 solve_bayesian_equilibrium)

    if setup is None:
        setup = PaperSetup(reward=1000.0)
    prices = setup.prices()
    types = [BudgetType(50.0, 0.4), BudgetType(150.0, 0.4),
             BudgetType(400.0, 0.2)]
    game = BayesianMinerGame(setup.n, types, reward=setup.reward,
                             fork_rate=setup.beta, h=setup.h)
    bne = solve_bayesian_equilibrium(game, prices)

    # Full-information benchmark, conditioned correctly: a type-k miner
    # faces n-1 opponents drawn multinomially; for every opponent
    # count-vector, solve the heterogeneous full-information NE and
    # average the miner's outcome with the multinomial weight (the exact
    # counterpart of the BNE's own expectation).
    k = len(types)
    probs = np.array([t.probability for t in types])
    m = setup.n - 1

    def opponent_profiles(
    ) -> Iterator[Tuple[Tuple[int, ...], float]]:
        for counts in itertools.product(range(m + 1), repeat=k):
            if sum(counts) != m:
                continue
            coef = math.factorial(m)
            weight = 1.0
            for c, q in zip(counts, probs):
                coef //= math.factorial(c)
                weight *= q ** c
            yield counts, coef * weight

    table = ResultTable(
        title="EXT9 — private budgets: Bayesian NE vs full information",
        columns=["budget", "bne_e", "fullinfo_e", "bne_utility",
                 "fullinfo_utility", "value_of_information"],
        notes="Full information lets miners condition on realized "
              "opponents; the per-type utility gap is the value of "
              "knowing the rivals' budgets.")
    for idx, t in enumerate(types):
        fi_e = 0.0
        fi_u = 0.0
        for counts, weight in opponent_profiles():
            budgets = [t.budget]
            for j, c in enumerate(counts):
                budgets += [types[j].budget] * c
            params = GameParameters(reward=setup.reward,
                                    fork_rate=setup.beta,
                                    budgets=budgets, h=setup.h)
            eq = solve_connected_equilibrium(params, prices)
            fi_e += weight * float(eq.e[0])
            fi_u += weight * float(eq.utilities[0])
        e_b, _ = bne.request(idx)
        table.add_row(t.budget, e_b, fi_e, float(bne.utilities[idx]),
                      fi_u, fi_u - float(bne.utilities[idx]))
    return table


def ext4_elasticities(setup: PaperSetup = DEFAULTS) -> ResultTable:
    """EXT4: equilibrium elasticities, connected and standalone."""
    conn = equilibrium_elasticities(setup.connected(), setup.prices())
    sa = equilibrium_elasticities(
        setup.standalone(budget=10 * setup.budget), setup.prices())
    table = ResultTable(
        title="EXT4 — equilibrium elasticities by mode",
        columns=["mode", "parameter", "eps_E", "eps_C", "eps_S"],
        notes=conn.notes)
    for row in conn.rows:
        table.add_row("connected", *row)
    for row in sa.rows:
        table.add_row("standalone", *row)
    return table
