"""Experiment harness: result tables, parameter sweeps, one function per
paper figure/table, and the ablation studies."""

from .ablations import (ablation_dynamic_weights, ablation_gnep_solvers,
                        ablation_transfer_semantics)
from .chaos import (chaos_control_comparison, chaos_outage_sweep,
                    outage_plan, recovery_rounds)
from .experiments import (DEFAULTS, PaperSetup, fig2_fork_model,
                          fig3_population, fig4_price_sweep,
                          fig5_delay_sweep, fig6_capacity_sweep,
                          fig6_csp_price_crossover, fig7_budget_sweep,
                          fig8_sp_equilibrium, fig9_population_uncertainty,
                          fig9_variance_sweep, table2_closed_forms,
                          welfare_observations)
from .extensions import (ext1_rent_dissipation, ext2_fictitious_play,
                         ext3_difficulty_retargeting, ext4_elasticities,
                         ext5_topology_calibration,
                         ext6_edge_competition,
                         ext7_optimal_block_size,
                         ext8_risk_aversion,
                         ext9_private_budgets)
from .report import build_report, render_convergence, render_markdown
from .reporting import compare, from_json, load, save, to_csv, to_json
from .sensitivity import elasticity, equilibrium_elasticities
from .series import ResultTable, render, sparkline
from .sweep import sweep

__all__ = [
    "ablation_dynamic_weights",
    "ablation_gnep_solvers",
    "ablation_transfer_semantics",
    "chaos_outage_sweep",
    "chaos_control_comparison",
    "recovery_rounds",
    "outage_plan",
    "DEFAULTS",
    "PaperSetup",
    "fig2_fork_model",
    "fig3_population",
    "fig4_price_sweep",
    "fig5_delay_sweep",
    "fig6_capacity_sweep",
    "fig6_csp_price_crossover",
    "fig7_budget_sweep",
    "fig8_sp_equilibrium",
    "fig9_population_uncertainty",
    "fig9_variance_sweep",
    "table2_closed_forms",
    "welfare_observations",
    "ext1_rent_dissipation",
    "ext2_fictitious_play",
    "ext3_difficulty_retargeting",
    "ext4_elasticities",
    "ext5_topology_calibration",
    "ext6_edge_competition",
    "ext7_optimal_block_size",
    "ext8_risk_aversion",
    "ext9_private_budgets",
    "build_report",
    "render_convergence",
    "render_markdown",
    "compare",
    "from_json",
    "load",
    "save",
    "to_csv",
    "to_json",
    "elasticity",
    "equilibrium_elasticities",
    "ResultTable",
    "render",
    "sparkline",
    "sweep",
]
