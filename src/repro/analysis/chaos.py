"""Chaos-scenario runner: robustness as a reproducible artifact.

Sweeps the ESP outage rate (fraction of market rounds the ESP is dark,
laid out as seeded outage windows) with a fixed background of transient
CSP failures and a mid-run latency spike, and tabulates realized miner
payoff, SP revenues, dropped requests, and retry spend. The pipeline
under test is the resilient one — every row is produced without a single
unhandled exception, which is the point: the chaos suite is a paper-style
sweep over *failure intensity* instead of a price or capacity knob.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..resilience import (CspLatencySpike, EspOutage, FaultPlan,
                          TransientFaults, run_resilient_pipeline)
from .experiments import DEFAULTS, PaperSetup
from .series import ResultTable
from .sweep import Number, sweep

__all__ = ["chaos_outage_sweep", "chaos_control_comparison",
           "outage_plan", "recovery_rounds"]


def outage_plan(outage_rate: float, n_rounds: int,
                transient_rate: float = 0.1, spike_factor: float = 2.0,
                seed: int = 0) -> FaultPlan:
    """A seeded fault plan whose ESP is dark for ``outage_rate`` of rounds.

    Outage rounds are drawn without replacement from a
    ``default_rng(seed)`` and merged into windows; a background of
    transient CSP failures runs throughout, and a latency spike covers
    the middle fifth of the run. Deterministic in all arguments.
    """
    if not 0.0 <= outage_rate <= 1.0:
        raise ValueError(f"outage_rate must be in [0, 1], "
                         f"got {outage_rate}")
    rng = np.random.default_rng(seed)
    n_out = int(round(outage_rate * n_rounds))
    faults: List[Any] = []
    if n_out >= n_rounds:
        faults.append(EspOutage(start=0))
    elif n_out > 0:
        dark = sorted(rng.choice(n_rounds, size=n_out, replace=False))
        start = prev = dark[0]
        for r in dark[1:]:
            if r == prev + 1:
                prev = r
                continue
            faults.append(EspOutage(start=start, stop=prev + 1))
            start = prev = r
        faults.append(EspOutage(start=start, stop=prev + 1))
    if transient_rate > 0:
        faults.append(TransientFaults(rate=transient_rate, target="csp"))
    if spike_factor > 1.0 and n_rounds >= 5:
        mid = n_rounds // 2
        faults.append(CspLatencySpike(start=mid, stop=mid + n_rounds // 5,
                                      factor=spike_factor))
    return FaultPlan(faults=tuple(faults), seed=seed)


def chaos_outage_sweep(outage_rates: Optional[Sequence[float]] = None,
                       setup: PaperSetup = DEFAULTS, n_rounds: int = 20,
                       seed: int = 0) -> ResultTable:
    """Chaos sweep: ESP outage rate vs realized miner payoff and SP revenue.

    Each point replays the (guarded) Stackelberg equilibrium for
    ``n_rounds`` blocks under a seeded fault plan built by
    :func:`outage_plan`. Expected shape: ESP revenue falls monotonically
    toward zero as the outage rate grows, the CSP absorbs the transferred
    demand, and at rate 1.0 the all-cloud (``P_e -> inf``) equilibrium is
    substituted outright.
    """
    if outage_rates is None:
        outage_rates = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    params = setup.connected()

    def evaluate(rate: Number) -> Dict[str, Number]:
        plan = outage_plan(float(rate), n_rounds, seed=seed)
        out = run_resilient_pipeline(params, plan, n_rounds=n_rounds,
                                     seed=seed)
        return {
            "mean_miner_payoff": out.mean_miner_payoff,
            "esp_revenue": out.esp_revenue,
            "csp_revenue": out.csp_revenue,
            "blocks_mined": out.blocks_mined,
            "faults_fired": len(out.report.faults),
            "retries": out.report.retries,
            "dropped_requests": len(out.report.failed_requests),
        }

    return sweep("Chaos — realized outcomes vs ESP outage rate "
                 f"({n_rounds} rounds, seeded faults)",
                 "outage_rate", list(outage_rates), evaluate,
                 notes="Resilient pipeline: every row completed without "
                       "an unhandled exception; at rate 1.0 the "
                       "all-cloud equilibrium is substituted. ESP "
                       "revenue decays with outage exposure while the "
                       "CSP absorbs transferred demand.")


def recovery_rounds(reports: Sequence[Any]) -> float:
    """Rounds from the first detected anomaly to the first clean window.

    ``reports`` is a :class:`~repro.control.loop.ControlLoop`'s
    ``reports`` list (one per tick). Returns NaN when nothing was ever
    detected, and ``inf`` when anomalies persisted through the final
    window (the loop never saw the system recover).
    """
    first_detect = None
    for report in reports:
        if report.anomalies and first_detect is None:
            first_detect = report.tick
        elif first_detect is not None and not report.anomalies:
            return float(report.tick - first_detect)
    if first_detect is None:
        return float("nan")
    return float("inf")


def chaos_control_comparison(transient_rates: Optional[Sequence[float]]
                             = None, setup: PaperSetup = DEFAULTS,
                             n_rounds: int = 20, seed: int = 0
                             ) -> ResultTable:
    """Chaos with the self-tuning control loop vs uncontrolled baseline.

    Each row replays one seeded fault plan (transient provider failures
    at the swept rate plus a mid-run latency spike) twice: once plain,
    once with a :class:`~repro.control.loop.ControlLoop` ticking every
    market round over the run's dispatcher. Reported per row: what the
    loop detected, verified, and applied; how many rounds detection-to-
    recovery took (inf = the fault outlived the run — honest, faults at
    a constant rate never "recover"); and the realized payoff/drop
    deltas against the baseline.

    Both runs execute inside a fresh global telemetry session (the
    detectors read the global registry), so any telemetry accumulated
    before this experiment is reset.
    """
    from ..control import ControlLoop, ControlTarget
    from ..telemetry import telemetry_session

    if transient_rates is None:
        transient_rates = [0.0, 0.2, 0.4, 0.6, 0.8]
    params = setup.connected()

    def evaluate(rate: Number) -> Dict[str, Number]:
        plan = outage_plan(0.0, n_rounds, transient_rate=float(rate),
                           seed=seed)
        baseline = run_resilient_pipeline(params, plan,
                                          n_rounds=n_rounds, seed=seed)
        with telemetry_session():
            controller = ControlLoop(ControlTarget(),
                                     cooldown_ticks=2, action_budget=8)
            controlled = run_resilient_pipeline(params, plan,
                                                n_rounds=n_rounds,
                                                seed=seed,
                                                controller=controller)
        summary = controlled.control_summary or {}
        recovery = recovery_rounds(controller.reports)
        return {
            "baseline_payoff": baseline.mean_miner_payoff,
            "controlled_payoff": controlled.mean_miner_payoff,
            "baseline_dropped": len(baseline.report.failed_requests),
            "controlled_dropped": len(controlled.report.failed_requests),
            "anomalies": summary.get("anomalies", 0),
            "actions_applied": summary.get("actions_applied", 0),
            "recovery_rounds": (recovery if math.isfinite(recovery)
                                else (-1.0 if math.isinf(recovery)
                                      else float("nan"))),
            "degraded_mode": float(controller.target.degraded),
        }

    return sweep("Chaos — self-tuning control loop vs uncontrolled "
                 f"baseline ({n_rounds} rounds, seeded faults)",
                 "transient_rate", list(transient_rates), evaluate,
                 notes="Same fault plan replayed twice per row. "
                       "recovery_rounds: detection-to-clean-window "
                       "distance in control ticks (NaN = nothing "
                       "detected, -1 = anomalies persisted to the end "
                       "of the run). Every applied action passed the "
                       "differential verification battery first.")
