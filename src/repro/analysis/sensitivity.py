"""Sensitivity analysis: elasticities of the miner equilibrium.

Quantifies how the follower-stage equilibrium aggregates respond to the
model's primitives — the local, differential version of the paper's
parameter sweeps. The elasticity of output ``y`` with respect to
parameter ``θ`` is estimated by central differences:

    ε = (θ / y) · dy/dθ ≈ (θ / y) · (y(θ(1+δ)) - y(θ(1-δ))) / (2δθ)

Closed forms make several of these exact in the homogeneous interior
regime (e.g. ``∂E/∂P_c · P_c/E``), which the tests use as ground truth.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, List, Tuple


from ..core import (EdgeMode, GameParameters, Prices,
                    solve_connected_equilibrium,
                    solve_standalone_equilibrium)
from ..exceptions import ConfigurationError
from .series import ResultTable

__all__ = ["equilibrium_elasticities", "elasticity"]


def _solve(params: GameParameters, prices: Prices) -> Any:
    if params.mode is EdgeMode.STANDALONE:
        return solve_standalone_equilibrium(params, prices)
    return solve_connected_equilibrium(params, prices)


def elasticity(evaluate: Callable[[float], float], theta: float,
               rel_step: float = 1e-4) -> float:
    """Central-difference elasticity of ``evaluate`` at ``theta``.

    Args:
        evaluate: Maps a parameter value to the scalar output.
        theta: Base parameter value (must be nonzero).
        rel_step: Relative perturbation ``δ``.
    """
    if theta == 0:
        raise ConfigurationError("elasticity needs a nonzero base value")
    hi = evaluate(theta * (1.0 + rel_step))
    lo = evaluate(theta * (1.0 - rel_step))
    base = evaluate(theta)
    if base == 0:
        raise ConfigurationError("output is zero at the base point")
    derivative = (hi - lo) / (2.0 * rel_step * theta)
    return float(theta / base * derivative)


def equilibrium_elasticities(params: GameParameters, prices: Prices,
                             rel_step: float = 1e-4) -> ResultTable:
    """Elasticities of ``E*``, ``C*`` and ``S*`` w.r.t. every primitive.

    Returns a table with one row per parameter (``P_e``, ``P_c``, ``R``,
    ``beta``, ``h`` — the latter only in connected mode; ``E_max`` only
    in standalone mode when the capacity binds).
    """

    def aggregates(p: GameParameters, pr: Prices
                   ) -> Tuple[float, float, float]:
        eq = _solve(p, pr)
        return eq.total_edge, eq.total_cloud, eq.total

    table = ResultTable(
        title="Equilibrium elasticities (dlog output / dlog parameter)",
        columns=["parameter", "eps_E", "eps_C", "eps_S"],
        notes="Central differences on the equilibrium aggregates; e.g. "
              "eps_E w.r.t. P_c is the cross-price elasticity of edge "
              "demand.")

    def add(name: str, base: float,
            solve_at: Callable[[float],
                               Tuple[float, float, float]]) -> None:
        eps: List[float] = []
        for idx in range(3):
            eps.append(elasticity(lambda t, i=idx: solve_at(t)[i], base,
                                  rel_step=rel_step))
        table.add_row(name, *eps)

    add("P_e", prices.p_e,
        lambda t: aggregates(params, Prices(t, prices.p_c)))
    add("P_c", prices.p_c,
        lambda t: aggregates(params, Prices(prices.p_e, t)))
    add("R", params.reward,
        lambda t: aggregates(replace(params, reward=t), prices))
    add("beta", params.fork_rate,
        lambda t: aggregates(replace(params, fork_rate=t), prices))
    if params.mode is EdgeMode.CONNECTED and params.h < 1.0:
        add("h", params.h,
            lambda t: aggregates(replace(params, h=min(t, 1.0)), prices))
    if params.mode is EdgeMode.STANDALONE:
        eq = _solve(params, prices)
        if eq.nu > 0:
            add("E_max", float(params.e_max),
                lambda t: aggregates(replace(params, e_max=t), prices))
    return table
