"""One function per paper artifact (Figs. 2-9, Table II, §VI-B text).

Each ``figN_*``/``tableN_*`` function re-runs the corresponding experiment
and returns a :class:`~repro.analysis.series.ResultTable` whose rows are
the points of the paper's plot. The paper does not print its exact
parameter values, so :class:`PaperSetup` documents our defaults; every
default satisfies the constraints the paper states (mixed-strategy price
condition, n=5 homogeneous miners with B=200, etc.). EXPERIMENTS.md
records the shape checks (who wins, what is monotone, where crossovers
fall) that these tables support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..blockchain import (Difficulty, EventDrivenSimulator, ForkModel,
                          MinerNode, PropagationModel)
from ..core import (DemandOracle, DynamicGame, EdgeMode, GameParameters,
                    Prices, csp_best_response, homogeneous,
                    solve_connected_equilibrium, solve_dynamic_equilibrium,
                    solve_stackelberg, table2_connected, table2_standalone)
from ..learning import RLTrainer
from ..population import (FixedPopulation, GaussianPopulation,
                          PopulationModel)
from ..serving import ScenarioSpec, ServingEngine
from .series import ResultTable
from .sweep import Number, scenario_sweep, sweep

__all__ = [
    "PaperSetup",
    "fig2_fork_model",
    "fig3_population",
    "fig4_price_sweep",
    "fig5_delay_sweep",
    "fig6_capacity_sweep",
    "fig6_csp_price_crossover",
    "fig7_budget_sweep",
    "fig8_sp_equilibrium",
    "fig9_population_uncertainty",
    "fig9_variance_sweep",
    "table2_closed_forms",
    "welfare_observations",
]


@dataclass(frozen=True)
class PaperSetup:
    """Default parameters for the Section-VI experiments.

    The paper fixes n=5 miners with budgets ``B_i = 200`` and leaves the
    remaining values unstated; these defaults satisfy every constraint the
    analysis imposes and are used consistently across all experiments.
    ``reward=1500`` puts ``B=200`` in the budget-binding regime
    (threshold ``R(n-1)(1-β+βh)/n² ≈ 230``), which Fig. 5(c) ("total SP
    revenue unchanged") and Fig. 7 (requests grow with budget up to
    B=200) both presuppose.
    """

    n: int = 5
    budget: float = 200.0
    reward: float = 1500.0
    beta: float = 0.2
    h: float = 0.8
    e_max: float = 80.0
    edge_cost: float = 0.2
    cloud_cost: float = 0.1
    p_e: float = 2.0
    p_c: float = 1.0

    def prices(self) -> Prices:
        return Prices(p_e=self.p_e, p_c=self.p_c)

    def connected(self, budget: Optional[float] = None) -> GameParameters:
        return homogeneous(self.n, budget or self.budget, reward=self.reward,
                           fork_rate=self.beta, mode=EdgeMode.CONNECTED,
                           h=self.h, edge_cost=self.edge_cost,
                           cloud_cost=self.cloud_cost)

    def standalone(self, budget: Optional[float] = None,
                   e_max: Optional[float] = None) -> GameParameters:
        return homogeneous(self.n, budget or self.budget, reward=self.reward,
                           fork_rate=self.beta, mode=EdgeMode.STANDALONE,
                           e_max=e_max or self.e_max,
                           edge_cost=self.edge_cost,
                           cloud_cost=self.cloud_cost)


DEFAULTS = PaperSetup()
__all__.append("DEFAULTS")

#: Fig. 9 runs with budgets slack (reward=1000 keeps B=200 above the
#: binding threshold of 153.6): the dynamic scenario isolates the
#: *capacity* channel, and binding budgets interact with the rejection
#: ramp in a way that destabilizes the symmetric fixed point.
FIG9_SETUP = PaperSetup(reward=1000.0)
__all__.append("FIG9_SETUP")


# --------------------------------------------------------------------- #
# Fig. 2 — block collision PDF / split-rate CDF vs communication delay.
# --------------------------------------------------------------------- #

def fig2_fork_model(delays: Optional[Sequence[float]] = None,
                    validate_blocks: int = 4000,
                    seed: int = 0) -> ResultTable:
    """Collision PDF, split-rate CDF, linearization, and the *emergent*
    fork rate from the event-driven simulator at each delay."""
    model = ForkModel()
    if delays is None:
        delays = [0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0]

    def evaluate(d: Number) -> Dict[str, Number]:
        # Mechanistic check: all-cloud miners, the fork rate then emerges
        # purely from edge conflicts -- so split power 50/50 edge/cloud and
        # measure the cloud-block orphan fraction.
        nodes = [MinerNode(0, 50.0, 0.0), MinerNode(1, 0.0, 50.0)]
        # 100 units total at this unit solve time => the network block rate
        # equals the fork model's collision rate λ.
        sim = EventDrivenSimulator(
            nodes, Difficulty(unit_solve_time=100.0 / model.collision_rate),
            PropagationModel(cloud_delay=d), seed=seed)
        res = sim.run(validate_blocks)
        cloud_blocks = res.nodes[1].blocks_won + res.nodes[1].blocks_orphaned
        empirical = (res.nodes[1].blocks_orphaned / cloud_blocks
                     if cloud_blocks else 0.0)
        # The exposure-window conflict probability for the edge pool:
        # 1 - exp(-rate_edge * d) with rate_edge = half the network rate.
        rate_edge = 0.5 * model.collision_rate
        predicted = 1.0 - np.exp(-rate_edge * d)
        return {
            "collision_pdf": float(model.pdf(d)),
            "fork_rate_cdf": float(model.fork_rate(d)),
            "linear_approx": float(model.linear_approximation(d)),
            "sim_cloud_orphan_rate": empirical,
            "sim_predicted": float(predicted),
        }

    return sweep("Fig. 2 — collision PDF and split rate vs delay",
                 "delay_s", delays, evaluate,
                 notes="CDF ~ linear for small delay; the simulator's "
                       "cloud-orphan rate matches the exponential-window "
                       "prediction (edge pool holds half the power).")


# --------------------------------------------------------------------- #
# Fig. 3 — Gaussian miner-count toy example.
# --------------------------------------------------------------------- #

def fig3_population(mu: float = 10.0, sigma: float = 2.0,
                    samples: int = 20000, seed: int = 0) -> ResultTable:
    """Discretized pmf vs empirical frequencies (μ=10, σ²=4 toy)."""
    pop = GaussianPopulation(mu, sigma)
    rng = np.random.default_rng(seed)
    draws = pop.sample(rng, size=samples)
    table = ResultTable(
        title=f"Fig. 3 — miner count ~ N({mu}, {sigma**2:.0f}) discretized",
        columns=["k", "pmf", "empirical"],
        notes=f"mean={pop.mean:.3f}, variance={pop.variance:.3f}")
    ks = pop.support()
    pmf = pop.pmf()
    for k, p in zip(ks, pmf):
        if p < 5e-4:
            continue
        emp = float(np.mean(draws == k))
        table.add_row(int(k), float(p), emp)
    return table


# --------------------------------------------------------------------- #
# Fig. 4 — miner requests and ESP revenue vs the CSP price.
# --------------------------------------------------------------------- #

def fig4_price_sweep(p_c_values: Optional[Sequence[float]] = None,
                     setup: PaperSetup = DEFAULTS,
                     engine: Optional[ServingEngine] = None) -> ResultTable:
    """Connected mode, homogeneous B=200: unilateral ``P_c`` increases push
    miners toward the ESP and raise ESP revenue."""
    params = setup.connected()
    if p_c_values is None:
        bound = params.mixed_price_bound(setup.p_e)
        p_c_values = np.round(np.linspace(0.5, 0.95 * bound, 8), 4)

    def make_spec(p_c: Number) -> ScenarioSpec:
        return ScenarioSpec(params, Prices(p_e=setup.p_e, p_c=p_c))

    def metrics(p_c: Number, eq: Any) -> Dict[str, Number]:
        return {
            "e_per_miner": float(eq.e[0]),
            "c_per_miner": float(eq.c[0]),
            "E_total": eq.total_edge,
            "esp_revenue": setup.p_e * eq.total_edge,
            "csp_revenue": p_c * eq.total_cloud,
        }

    return scenario_sweep(
        "Fig. 4 — miner subgame NE vs unilateral CSP price P_c "
        f"(P_e={setup.p_e})", "P_c", p_c_values, make_spec, metrics,
        engine=engine,
        notes="Raising P_c shifts requests to the ESP: e* and ESP "
              "revenue increase monotonically.")


# --------------------------------------------------------------------- #
# Fig. 5 — fork rate (delay) effects; total SP revenue ~ constant.
# --------------------------------------------------------------------- #

def fig5_delay_sweep(betas: Optional[Sequence[float]] = None,
                     setup: PaperSetup = DEFAULTS,
                     engine: Optional[ServingEngine] = None) -> ResultTable:
    """Connected mode: higher β (longer CSP delay) cuts CSP units sold and
    revenue, while total SP-side revenue stays pinned at the miners'
    aggregate budget (the budget constraint binds)."""
    if betas is None:
        betas = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35]
    fork = ForkModel()

    def make_spec(beta: Number) -> ScenarioSpec:
        params = homogeneous(setup.n, setup.budget, reward=setup.reward,
                             fork_rate=beta, h=setup.h,
                             edge_cost=setup.edge_cost,
                             cloud_cost=setup.cloud_cost)
        return ScenarioSpec(params, setup.prices())

    def metrics(beta: Number, eq: Any) -> Dict[str, Number]:
        esp_rev = setup.p_e * eq.total_edge
        csp_rev = setup.p_c * eq.total_cloud
        return {
            "delay_s": fork.delay_for_fork_rate(beta),
            "C_total": eq.total_cloud,
            "csp_revenue": csp_rev,
            "esp_revenue": esp_rev,
            "total_sp_revenue": esp_rev + csp_rev,
            "total_budget": setup.n * setup.budget,
        }

    return scenario_sweep(
        "Fig. 5 — CSP units/revenue vs fork rate β (CSP delay)",
        "beta", betas, make_spec, metrics, engine=engine,
        notes="C and CSP revenue fall with β; total SP revenue "
              "stays ~= the aggregate miner budget (binding "
              "budgets).")


# --------------------------------------------------------------------- #
# Fig. 6 — standalone capacity effects and CSP-price crossover.
# --------------------------------------------------------------------- #

def fig6_capacity_sweep(e_max_values: Optional[Sequence[float]] = None,
                        setup: PaperSetup = DEFAULTS,
                        engine: Optional[ServingEngine] = None
                        ) -> ResultTable:
    """Standalone mode: ESP capacity is positively related to edge
    requests; the connected mode discourages ESP purchases."""
    if e_max_values is None:
        e_max_values = [20, 40, 60, 80, 100, 120, 140, 160]
    big_budget = 10.0 * setup.budget  # sufficient budgets isolate capacity
    connected_eq = solve_connected_equilibrium(
        setup.connected(budget=big_budget), setup.prices())
    connected_e = connected_eq.total_edge

    def make_spec(e_max: Number) -> ScenarioSpec:
        params = setup.standalone(budget=big_budget, e_max=e_max)
        return ScenarioSpec(params, setup.prices())

    def metrics(e_max: Number, eq: Any) -> Dict[str, Number]:
        return {
            "E_total": eq.total_edge,
            "capacity_bound": min(
                e_max, eq.total_edge + eq.total_cloud),
            "nu_shadow_price": eq.nu,
            "esp_revenue": setup.p_e * eq.total_edge,
            "connected_E_total": connected_e,
        }

    return scenario_sweep(
        "Fig. 6 — standalone edge requests vs capacity E_max",
        "E_max", e_max_values, make_spec, metrics, engine=engine,
        notes="E* grows with capacity until the unconstrained "
              "demand is reached; connected-mode E* (transfer "
              "rate 1-h) stays below the standalone level.")


def fig6_csp_price_crossover(p_e_values: Optional[Sequence[float]] = None,
                             betas: Sequence[float] = (0.1, 0.3),
                             setup: PaperSetup = DEFAULTS) -> ResultTable:
    """Fig. 6 companion: CSP optimal-price reaction curves per delay.

    "The longer the communication delay, the lower the optimal price" —
    the β=0.3 curve sits uniformly below the β=0.1 curve across the
    ``P_e`` sweep. (The visual "cross" in the paper's Fig. 6 is the rising
    standalone-capacity curve crossing the flat connected-mode baseline;
    see :func:`fig6_capacity_sweep`.)"""
    if p_e_values is None:
        p_e_values = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]

    def evaluate(p_e: Number) -> Dict[str, Number]:
        out: Dict[str, Number] = {}
        for beta in betas:
            params = homogeneous(setup.n, setup.budget, reward=setup.reward,
                                 fork_rate=beta, h=setup.h,
                                 cloud_cost=setup.cloud_cost)
            oracle = DemandOracle(params)
            out[f"p_c_star_beta_{beta}"] = csp_best_response(oracle, p_e)
        return out

    return sweep("Fig. 6 (cross) — CSP optimal price vs P_e per delay",
                 "P_e", p_e_values, evaluate,
                 notes="The longer the communication delay (higher β), the "
                       "lower the CSP's optimal price.")


# --------------------------------------------------------------------- #
# Fig. 7 — miner-side budget effects (heterogeneous miners).
# --------------------------------------------------------------------- #

def fig7_budget_sweep(budgets: Optional[Sequence[float]] = None,
                      betas: Sequence[float] = (0.1, 0.2),
                      setup: PaperSetup = DEFAULTS) -> ResultTable:
    """Vary miner 1's budget from 20 to 200 (others fixed at B=200):
    its requests and utility grow; total requests barely move across
    CSP delays."""
    if budgets is None:
        budgets = [20, 50, 80, 110, 140, 170, 200]

    def evaluate(b1: Number) -> Dict[str, Number]:
        out: Dict[str, Number] = {}
        for beta in betas:
            others = [setup.budget] * (setup.n - 1)
            params = GameParameters(
                reward=setup.reward, fork_rate=beta,
                budgets=[b1] + others, h=setup.h,
                edge_cost=setup.edge_cost, cloud_cost=setup.cloud_cost)
            eq = solve_connected_equilibrium(params, setup.prices())
            out[f"e1_beta_{beta}"] = float(eq.e[0])
            out[f"c1_beta_{beta}"] = float(eq.c[0])
            out[f"U1_beta_{beta}"] = float(eq.utilities[0])
            out[f"r1_total_beta_{beta}"] = float(eq.e[0] + eq.c[0])
        return out

    return sweep("Fig. 7 — miner 1's requests and utility vs its budget",
                 "B_1", budgets, evaluate,
                 notes="Requests and utility increase with budget; total "
                       "requested units are similar across delays.")


# --------------------------------------------------------------------- #
# Fig. 8 — SP equilibrium prices vs ESP operating cost, both modes.
# --------------------------------------------------------------------- #

def fig8_sp_equilibrium(edge_costs: Optional[Sequence[float]] = None,
                        setup: PaperSetup = DEFAULTS) -> ResultTable:
    """Full Stackelberg solve per ESP cost point, in both edge modes."""
    if edge_costs is None:
        edge_costs = [0.1, 0.2, 0.4, 0.6, 0.8]

    def evaluate(c_e: Number) -> Dict[str, Number]:
        conn = homogeneous(setup.n, setup.budget, reward=setup.reward,
                           fork_rate=setup.beta, h=setup.h,
                           edge_cost=c_e, cloud_cost=setup.cloud_cost)
        sa = homogeneous(setup.n, setup.budget, reward=setup.reward,
                         fork_rate=setup.beta, mode=EdgeMode.STANDALONE,
                         e_max=setup.e_max, edge_cost=c_e,
                         cloud_cost=setup.cloud_cost)
        # Theorem 4's solution concept: the ESP anticipates the CSP's
        # reaction curve. (Simultaneous leader best response degenerates at
        # the pure-edge kink of the demand system — see DESIGN.md.)
        se_conn = solve_stackelberg(conn, scheme="esp-anticipates",
                                    tol=1e-5, price_xatol=1e-6)
        se_sa = solve_stackelberg(sa, scheme="esp-anticipates",
                                  tol=1e-5, price_xatol=1e-6)
        return {
            "P_e_connected": se_conn.prices.p_e,
            "P_c_connected": se_conn.prices.p_c,
            "P_e_standalone": se_sa.prices.p_e,
            "P_c_standalone": se_sa.prices.p_c,
            "V_e_connected": se_conn.v_e,
            "V_e_standalone": se_sa.v_e,
            "V_c_connected": se_conn.v_c,
            "V_c_standalone": se_sa.v_c,
        }

    return sweep("Fig. 8 — SP equilibrium prices vs ESP unit cost C_e",
                 "C_e", edge_costs, evaluate,
                 notes="P_e rises with C_e and exceeds P_c in both modes; "
                       "standalone mode lets the ESP charge more and earn "
                       "more while the CSP earns less.")


# --------------------------------------------------------------------- #
# Fig. 9 — population uncertainty: model vs RL.
# --------------------------------------------------------------------- #

def fig9_population_uncertainty(mu: float = 5.0, sigma: float = 2.0,
                                e_max: float = 40.0,
                                setup: PaperSetup = None,
                                seed: int = 0,
                                rl_seeds: int = 3) -> ResultTable:
    """Fig. 9(a): per-miner ESP requests — analytic model (lines) vs RL
    (points), fixed vs uncertain population, standalone capacity. RL
    strategies are averaged over ``rl_seeds`` independent epochs (the
    strategy-grid resolution is comparable to the effect size at a single
    seed)."""
    if setup is None:
        setup = FIG9_SETUP
    prices = setup.prices()
    table = ResultTable(
        title=f"Fig. 9(a) — ESP requests under population uncertainty "
              f"(mu={mu}, sigma^2={sigma**2:.0f}, E_max={e_max})",
        columns=["scenario", "model_e", "rl_e", "model_Ne", "E_max",
                 "overload_prob"],
        notes="Uncertainty makes miners more ESP-aggressive; expected "
              "aggregate edge demand can exceed E_max. (The effect size "
              "depends on how hard the capacity binds: E_max=40 makes it "
              "large enough for the RL grid to resolve.)")

    fixed_game = DynamicGame(FixedPopulation(int(mu)), reward=setup.reward,
                             fork_rate=setup.beta, budget=setup.budget,
                             e_max=e_max, weights="capacity")
    dyn_game = DynamicGame(GaussianPopulation(mu, sigma),
                           reward=setup.reward, fork_rate=setup.beta,
                           budget=setup.budget, e_max=e_max,
                           weights="capacity")
    fixed = solve_dynamic_equilibrium(fixed_game, prices)
    dyn = solve_dynamic_equilibrium(dyn_game, prices)

    def rl_mean_edge(population: PopulationModel) -> float:
        values: List[float] = []
        for s_idx in range(rl_seeds):
            trainer = RLTrainer(population, budget=setup.budget,
                                reward=setup.reward, fork_rate=setup.beta,
                                e_max=e_max, seed=seed + 1000 * s_idx,
                                grid_spend_levels=10, grid_split_levels=41)
            values.append(trainer.run_epoch(prices.p_e,
                                            prices.p_c).mean_edge)
        return float(np.mean(values))

    rl_fixed = rl_mean_edge(FixedPopulation(int(mu)))
    rl_dyn = rl_mean_edge(GaussianPopulation(mu, sigma))

    table.add_row("fixed N", fixed.e, rl_fixed,
                  fixed.expected_edge_total, e_max,
                  fixed.expected_overload)
    table.add_row("N~Gaussian", dyn.e, rl_dyn,
                  dyn.expected_edge_total, e_max,
                  dyn.expected_overload)
    return table


def fig9_variance_sweep(sigmas: Optional[Sequence[float]] = None,
                        mu: float = 5.0, e_max: float = 40.0,
                        setup: PaperSetup = None,
                        seed: int = 0) -> ResultTable:
    """Fig. 9(b): a larger population variance makes miners more
    ESP-prone (capacity-weight model, standalone)."""
    if setup is None:
        setup = FIG9_SETUP
    if sigmas is None:
        sigmas = [0.5, 1.0, 1.5, 2.0, 2.5]
    prices = setup.prices()

    def evaluate(sigma: Number) -> Dict[str, Number]:
        game = DynamicGame(GaussianPopulation(mu, sigma),
                           reward=setup.reward, fork_rate=setup.beta,
                           budget=setup.budget, e_max=e_max,
                           weights="capacity")
        dyn = solve_dynamic_equilibrium(game, prices)
        trainer = RLTrainer(GaussianPopulation(mu, sigma),
                            budget=setup.budget, reward=setup.reward,
                            fork_rate=setup.beta, e_max=e_max,
                            seed=seed, grid_spend_levels=10,
                            grid_split_levels=41)
        ep = trainer.run_epoch(prices.p_e, prices.p_c)
        return {
            "model_e": dyn.e,
            "rl_e": ep.mean_edge,
            "expected_Ne": dyn.expected_edge_total,
            "overload_prob": dyn.expected_overload,
        }

    return sweep("Fig. 9(b) — ESP requests vs population variance",
                 "sigma", sigmas, evaluate,
                 notes="Larger variance -> more ESP-prone miners; RL "
                       "points track the model lines.")


# --------------------------------------------------------------------- #
# Table II — closed forms vs numeric solvers, both modes.
# --------------------------------------------------------------------- #

def table2_closed_forms(setup: PaperSetup = DEFAULTS) -> ResultTable:
    """Sufficient-budget SP equilibria: closed forms (standalone) and
    semi-closed forms (connected) vs full numeric Stackelberg solves."""
    big = 50.0 * setup.budget
    sa_cf = table2_standalone(setup.n, setup.reward, setup.beta, setup.e_max,
                              setup.edge_cost, setup.cloud_cost)
    conn_cf = table2_connected(setup.n, setup.reward, setup.beta, setup.h,
                               setup.edge_cost, setup.cloud_cost)
    sa_num = solve_stackelberg(
        homogeneous(setup.n, big, reward=setup.reward, fork_rate=setup.beta,
                    mode=EdgeMode.STANDALONE, e_max=setup.e_max,
                    edge_cost=setup.edge_cost, cloud_cost=setup.cloud_cost),
        scheme="esp-anticipates", price_xatol=1e-7)
    conn_num = solve_stackelberg(
        homogeneous(setup.n, big, reward=setup.reward, fork_rate=setup.beta,
                    h=setup.h, edge_cost=setup.edge_cost,
                    cloud_cost=setup.cloud_cost),
        scheme="esp-anticipates", price_xatol=1e-7)

    table = ResultTable(
        title="Table II — sufficient-budget equilibria, connected vs "
              "standalone",
        columns=["quantity", "connected_cf", "connected_num",
                 "standalone_cf", "standalone_num"],
        notes="cf = closed form, num = full numeric Stackelberg. Total "
              "requested units match across modes; the standalone ESP "
              "prices higher and profits more.")
    table.add_row("P_e*", conn_cf.prices.p_e, conn_num.prices.p_e,
                  sa_cf.prices.p_e, sa_num.prices.p_e)
    table.add_row("P_c*", conn_cf.prices.p_c, conn_num.prices.p_c,
                  sa_cf.prices.p_c, sa_num.prices.p_c)
    table.add_row("e* per miner", conn_cf.miner.e, conn_num.miners.e[0],
                  sa_cf.miner.e, sa_num.miners.e[0])
    table.add_row("c* per miner", conn_cf.miner.c, conn_num.miners.c[0],
                  sa_cf.miner.c, sa_num.miners.c[0])
    table.add_row("S* total", conn_cf.miner.total, conn_num.miners.total,
                  sa_cf.miner.total, sa_num.miners.total)
    table.add_row("V_e*", conn_cf.v_e, conn_num.v_e, sa_cf.v_e, sa_num.v_e)
    table.add_row("V_c*", conn_cf.v_c, conn_num.v_c, sa_cf.v_c, sa_num.v_c)
    return table


# --------------------------------------------------------------------- #
# §VI-B observations — SP welfare vs budgets and reward.
# --------------------------------------------------------------------- #

def welfare_observations(budgets: Optional[Sequence[float]] = None,
                         setup: PaperSetup = DEFAULTS) -> ResultTable:
    """SP-side welfare is bounded by aggregate budgets while they bind,
    then saturates at a level set by the mining reward."""
    if budgets is None:
        budgets = [20, 50, 100, 150, 200, 400, 800, 1600]

    def evaluate(b: Number) -> Dict[str, Number]:
        params = setup.connected(budget=b)
        eq = solve_connected_equilibrium(params, setup.prices())
        esp_rev = setup.p_e * eq.total_edge
        csp_rev = setup.p_c * eq.total_cloud
        return {
            "total_sp_revenue": esp_rev + csp_rev,
            "aggregate_budget": setup.n * b,
            "budget_binding": bool(np.all(eq.spending >= b - 1e-6)),
        }

    return sweep("§VI-B — SP welfare vs miner budgets", "B", budgets,
                 evaluate,
                 notes="Welfare == n*B while budgets bind; once budgets "
                       "are sufficient it saturates at R(n-1)(1-β+βh)/n "
                       "per miner-independent demand.")
