"""Span tracing: nested wall-clock timing trees via context managers.

A :class:`Tracer` keeps a thread-local stack of open spans; entering
``tracer.span("serving.batch", size=64)`` pushes a child of whatever
span is currently open on the same thread. Finished *root* spans are
collected (bounded) so a CLI run can dump its full timing tree at exit
(``repro-mining ... --trace trace.json``).

The disabled path never touches the tracer: callers go through
:meth:`repro.telemetry.Telemetry.span`, which returns the shared
:data:`NULL_SPAN` singleton when telemetry is off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SpanRecord", "Span", "NullSpan", "NULL_SPAN", "Tracer"]


@dataclass
class SpanRecord:
    """One finished (or still-open) span of the timing tree."""

    name: str
    start: float
    duration: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanRecord"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class Span:
    """Context manager timing one tree node; created by the tracer."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer",
                 record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (e.g. result counts)."""
        self.record.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self.record)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.record.duration = (time.perf_counter()
                                - self.record.start)
        self._tracer._pop(self.record)


class NullSpan:
    """The no-op span: zero allocation, zero bookkeeping."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


#: Shared no-op instance returned whenever telemetry is disabled.
NULL_SPAN = NullSpan()


class Tracer:
    """Collects span trees per thread; finished roots are retained.

    Args:
        max_roots: Bound on retained finished root spans (oldest
            dropped first) so long-lived processes cannot grow without
            bound.
    """

    def __init__(self, max_roots: int = 256) -> None:
        self.max_roots = max_roots
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[SpanRecord] = []

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """Create a span; nest it under the enclosing open span."""
        return Span(self, SpanRecord(name=name,
                                     start=time.perf_counter(),
                                     attrs=dict(attrs)))

    def _push(self, record: SpanRecord) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(record)
        stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        if not stack:
            with self._lock:
                self._roots.append(record)
                if len(self._roots) > self.max_roots:
                    del self._roots[:len(self._roots) - self.max_roots]

    @property
    def roots(self) -> List[SpanRecord]:
        """Finished root spans, oldest first (snapshot copy)."""
        with self._lock:
            return list(self._roots)

    def tree(self) -> List[Dict[str, Any]]:
        """JSON-serializable forest of every finished root span."""
        return [r.to_dict() for r in self.roots]

    def render(self, unit: str = "ms") -> str:
        """Human-readable indented rendering of the span forest."""
        scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
        lines: List[str] = []

        def walk(record: SpanRecord, depth: int) -> None:
            took = ("?" if record.duration is None
                    else f"{record.duration * scale:.3f}{unit}")
            attrs = "".join(f" {k}={v}"
                            for k, v in sorted(record.attrs.items()))
            lines.append(f"{'  ' * depth}{record.name} {took}{attrs}")
            for child in record.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every finished root (open spans are unaffected)."""
        with self._lock:
            self._roots.clear()
