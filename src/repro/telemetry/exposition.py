"""Exposition formats: registry snapshots as JSON or Prometheus text.

Two renderers over :meth:`~repro.telemetry.metrics.MetricsRegistry`
families, plus a small strict parser for the Prometheus text format
used by the CI smoke job and the test suite to prove the exported text
is machine-readable (no Prometheus dependency needed).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Tuple

from .metrics import Histogram, MetricsRegistry

__all__ = ["render_json", "render_prometheus", "parse_prometheus"]


def render_json(registry: MetricsRegistry, indent: int = 1) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent,
                      sort_keys=True, allow_nan=True)


def _label_text(labels: Tuple[Tuple[str, str], ...],
                extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _num(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format (0.0.4).

    Counters get a ``_total``-free verbatim name (families here already
    follow the ``*_total`` convention), histograms expand into
    ``_bucket``/``_sum``/``_count`` series with cumulative ``le``
    labels, exactly as a Prometheus scraper expects.
    """
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in sorted(family.children.items()):
            if isinstance(child, Histogram):
                cumulative = 0
                for bound, count in zip(child.bounds, child.counts):
                    cumulative += count
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_text(labels, (('le', _num(bound)),))}"
                        f" {cumulative}")
                lines.append(
                    f"{family.name}_bucket"
                    f"{_label_text(labels, (('le', '+Inf'),))}"
                    f" {child.count}")
                lines.append(f"{family.name}_sum{_label_text(labels)} "
                             f"{_num(child.sum)}")
                lines.append(f"{family.name}_count{_label_text(labels)} "
                             f"{child.count}")
            else:
                lines.append(f"{family.name}{_label_text(labels)} "
                             f"{_num(child.value)}")
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> List[Dict[str, Any]]:
    """Parse Prometheus exposition text into sample dictionaries.

    Returns one ``{"name", "labels", "value"}`` record per sample line.
    Raises ``ValueError`` on any line that is neither a comment, a
    blank, nor a well-formed sample — the strictness is the point: the
    CI smoke job uses this to prove the ``metrics`` subcommand's output
    would be scrapeable.
    """
    samples: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno} is not valid exposition text: {line!r}")
        raw = match.group("labels")
        labels: Dict[str, str] = {}
        if raw:
            consumed = sum(len(m.group(0))
                           for m in _LABEL.finditer(raw))
            if consumed < len(raw.replace(",", "")):
                raise ValueError(
                    f"line {lineno} has malformed labels: {raw!r}")
            labels = {m.group(1): m.group(2)
                      for m in _LABEL.finditer(raw)}
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            value = float(value_text)  # raises ValueError when garbage
        samples.append({"name": match.group("name"), "labels": labels,
                        "value": value})
    return samples
