"""repro.telemetry — metrics, span tracing, and a structured event log.

The observability substrate of the serving system: a process-wide
:class:`~repro.telemetry.metrics.MetricsRegistry` (counters, gauges,
fixed-bucket histograms with p50/p95/p99 estimation), a
:class:`~repro.telemetry.tracing.Tracer` producing nested wall-clock
span trees, and a JSON-lines
:class:`~repro.telemetry.events.EventLog` — all reachable through one
global :class:`Telemetry` facade that **defaults to disabled**.

The zero-overhead contract: instrumented hot paths guard every
telemetry touch behind ``TELEMETRY.enabled`` (a plain attribute read),
and :meth:`Telemetry.span` returns a shared no-op singleton when
disabled — so cold-path solver outputs stay bit-identical whether the
instrumentation exists or not (proved by the golden-value tests).

Usage::

    from repro.telemetry import telemetry_session

    with telemetry_session() as tel:
        engine.serve_batch(specs)          # seams record into tel
        print(render_prometheus(tel.metrics))
        print(tel.tracer.render())

or imperatively: ``enable()`` / ``disable()`` flip the global facade.
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from .events import EventLog
from .exposition import parse_prometheus, render_json, render_prometheus
from .metrics import (DEFAULT_BUCKETS, RESIDUAL_BUCKETS, Counter, Gauge,
                      Histogram, MetricsRegistry, quantile_from_counts,
                      snapshot_delta)
from .tracing import NULL_SPAN, NullSpan, Span, SpanRecord, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "RESIDUAL_BUCKETS",
    "quantile_from_counts", "snapshot_delta",
    "Span", "SpanRecord", "NullSpan", "NULL_SPAN", "Tracer",
    "EventLog",
    "render_json", "render_prometheus", "parse_prometheus",
    "Telemetry", "TELEMETRY", "get_telemetry",
    "enable", "disable", "telemetry_enabled", "telemetry_session",
]


class Telemetry:
    """The facade the instrumentation seams talk to.

    ``enabled`` is the single switch every seam checks; the registry,
    tracer, and event log always exist (they are cheap when idle) so
    seams never need None checks beyond the flag.
    """

    __slots__ = ("enabled", "metrics", "tracer", "events")

    def __init__(self, enabled: bool = False,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 events: Optional[EventLog] = None) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.events = events if events is not None else EventLog()

    def span(self, name: str,
             **attrs: Any) -> Union[Span, NullSpan]:
        """A tracer span when enabled; the shared no-op otherwise."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def emit(self, kind: str, **fields: Any) -> None:
        """Record a structured event (no-op when disabled)."""
        if self.enabled:
            self.events.emit(kind, **fields)

    def reset(self) -> None:
        """Clear metrics, finished spans, and buffered events."""
        self.metrics.reset()
        self.tracer.reset()
        self.events.reset()


#: The process-wide telemetry facade. Disabled by default: every seam
#: in the library reduces to one attribute check.
TELEMETRY = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The global :class:`Telemetry` facade."""
    return TELEMETRY


def enable(event_path: Optional[Union[str, Path]] = None,
           reset: bool = False) -> Telemetry:
    """Switch the global telemetry on (optionally binding the event log).

    Args:
        event_path: When given, structured events stream to this
            JSON-lines file.
        reset: Clear previously accumulated metrics/spans/events first.
    """
    if reset:
        TELEMETRY.reset()
    if event_path is not None:
        TELEMETRY.events.bind(event_path)
    TELEMETRY.enabled = True
    return TELEMETRY


def disable() -> Telemetry:
    """Switch the global telemetry off (accumulated data is retained)."""
    TELEMETRY.enabled = False
    return TELEMETRY


def telemetry_enabled() -> bool:
    """Whether the global facade is currently recording."""
    return TELEMETRY.enabled


@contextlib.contextmanager
def telemetry_session(event_path: Optional[Union[str, Path]] = None,
                      reset: bool = True) -> Iterator[Telemetry]:
    """Enable telemetry for a scope, restoring the prior state after.

    The workhorse of the CLI and the tests: a fresh recording window
    whose collected metrics/spans/events stay readable after the block
    exits (only the *switch* is restored, not the data).
    """
    prior = TELEMETRY.enabled
    enable(event_path=event_path, reset=reset)
    try:
        yield TELEMETRY
    finally:
        TELEMETRY.enabled = prior
        if event_path is not None:
            TELEMETRY.events.unbind()
