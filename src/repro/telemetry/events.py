"""Structured event log: JSON-lines records with a bounded ring buffer.

:class:`EventLog` records discrete happenings — a solver fallback, an
injected fault, a cache eviction burst — as structured dictionaries
rather than log text. Events are kept in a bounded in-memory deque and,
when the log is bound to a path, appended to a JSON-lines file so a
run's event stream survives the process.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["EventLog"]


class EventLog:
    """Bounded, thread-safe structured event recorder.

    Args:
        maxlen: In-memory ring-buffer bound (oldest events dropped).
        path: Optional JSON-lines file; every event is appended as one
            line. Binding can also happen later via :meth:`bind`.
    """

    def __init__(self, maxlen: int = 4096,
                 path: Optional[Union[str, Path]] = None) -> None:
        self._lock = threading.Lock()
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=maxlen)
        self._seq = 0
        self._path: Optional[Path] = None
        if path is not None:
            self.bind(path)

    def bind(self, path: Union[str, Path]) -> None:
        """Start appending events to ``path`` (JSON lines)."""
        with self._lock:
            self._path = Path(path)
            self._path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._path.touch()
            except OSError:
                pass

    def unbind(self) -> None:
        """Stop writing to the bound file (in-memory buffer continues)."""
        with self._lock:
            self._path = None

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the stored record."""
        with self._lock:
            self._seq += 1
            record: Dict[str, Any] = {"seq": self._seq,
                                      "ts": time.time(),
                                      "kind": str(kind)}
            record.update(fields)
            self._events.append(record)
            if self._path is not None:
                try:
                    with self._path.open("a") as fh:
                        fh.write(json.dumps(record, default=str) + "\n")
                except OSError:
                    # The event stream is best-effort observability;
                    # a full disk must never fail the solve it observes.
                    pass
            return record

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` events (all retained when ``None``)."""
        with self._lock:
            events = list(self._events)
        return events if n is None else events[-n:]

    def to_jsonl(self) -> str:
        """The retained buffer as a JSON-lines string."""
        return "\n".join(json.dumps(e, default=str) for e in self.tail())

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        """Drop the in-memory buffer (the bound file is left alone)."""
        with self._lock:
            self._events.clear()
            self._seq = 0
