"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds metric *families* keyed by name; each
family fans out into children keyed by a (sorted) label set, mirroring
the Prometheus data model. Histograms use fixed upper-bound buckets
with linear interpolation inside the winning bucket for p50/p95/p99
quantile estimation — cheap enough to observe per solver iteration.

All operations are thread-safe (one registry lock plus per-family
creation, counter increments under the lock-free GIL path of plain
float adds guarded by a lock only on child creation is not worth the
complexity here: a single ``threading.Lock`` guards every mutation,
and the hot paths only touch it when telemetry is enabled).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "RESIDUAL_BUCKETS"]

#: Default histogram buckets: wall-clock latencies in seconds, spanning
#: microsecond cache hits to multi-second Stackelberg solves.
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 30.0)

#: Buckets for solver residuals, spanning tolerance floors to divergence.
RESIDUAL_BUCKETS = (1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0, 1e2)

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimation.

    ``buckets`` are the finite upper bounds (ascending); an implicit
    ``+Inf`` bucket catches the overflow. Quantiles are estimated by
    locating the target rank's bucket and interpolating linearly inside
    it — exact enough for latency/residual distributions while keeping
    ``observe`` O(log #buckets).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"buckets must be distinct and ascending, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= rank and n > 0:
                hi = (self.bounds[i] if i < len(self.bounds)
                      else self.bounds[-1])
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):
                    return hi  # overflow bucket: clamp to the last bound
                frac = (rank - (cumulative - n)) / n
                return lo + frac * (hi - lo)
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class _Family:
    """One named metric family: kind, help text, labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelSet, Any] = {}

    def child(self, labels: LabelSet):
        made = self.children.get(labels)
        if made is None:
            if self.kind == "counter":
                made = Counter()
            elif self.kind == "gauge":
                made = Gauge()
            else:
                made = Histogram(self.buckets or DEFAULT_BUCKETS)
            self.children[labels] = made
        return made


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms.

    Metric getters are create-or-get: the first call registers the
    family (name, kind, help text, buckets); later calls return the
    existing child for the label set. Re-registering a name as a
    different kind raises ``ValueError`` — silent kind drift would
    corrupt the exposition.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    def _family(self, name: str, kind: str, help_text: str,
                buckets: Optional[Tuple[float, ...]] = None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}")
        return family

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        with self._lock:
            return self._family(name, "counter", help).child(
                _labelset(labels))

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        with self._lock:
            return self._family(name, "gauge", help).child(
                _labelset(labels))

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Iterable[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        with self._lock:
            return self._family(name, "histogram", help,
                                tuple(float(b) for b in buckets)
                                ).child(_labelset(labels))

    def families(self) -> List[_Family]:
        """Snapshot of the registered families, sorted by name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def reset(self) -> None:
        """Drop every registered family (tests, fresh CLI runs)."""
        with self._lock:
            self._families.clear()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable view of every metric.

        Shape: ``{name: {"kind", "help", "values": [{"labels", ...}]}}``
        with per-kind payloads — counters/gauges carry ``value``;
        histograms carry ``count``, ``sum``, ``buckets`` (upper bound ->
        cumulative count) and the ``p50``/``p95``/``p99`` estimates.
        """
        out: Dict[str, Any] = {}
        for family in self.families():
            values = []
            for labels, child in sorted(family.children.items()):
                entry: Dict[str, Any] = {"labels": dict(labels)}
                if isinstance(child, Histogram):
                    cumulative = 0
                    buckets = {}
                    for bound, n in zip(child.bounds, child.counts):
                        cumulative += n
                        buckets[repr(bound)] = cumulative
                    buckets["+Inf"] = child.count
                    entry.update(count=child.count, sum=child.sum,
                                 buckets=buckets, p50=child.p50,
                                 p95=child.p95, p99=child.p99)
                else:
                    entry["value"] = child.value
                values.append(entry)
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "values": values}
        return out
