"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds metric *families* keyed by name; each
family fans out into children keyed by a (sorted) label set, mirroring
the Prometheus data model. Histograms use fixed upper-bound buckets
with linear interpolation inside the winning bucket for p50/p95/p99
quantile estimation — cheap enough to observe per solver iteration.

All operations are thread-safe (one registry lock plus per-family
creation, counter increments under the lock-free GIL path of plain
float adds guarded by a lock only on child creation is not worth the
complexity here: a single ``threading.Lock`` guards every mutation,
and the hot paths only touch it when telemetry is enabled).
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "RESIDUAL_BUCKETS",
           "quantile_from_counts", "snapshot_delta"]

#: Default histogram buckets: wall-clock latencies in seconds, spanning
#: microsecond cache hits to multi-second Stackelberg solves.
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 30.0)

#: Buckets for solver residuals, spanning tolerance floors to divergence.
RESIDUAL_BUCKETS = (1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0, 1e2)

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimation.

    ``buckets`` are the finite upper bounds (ascending); an implicit
    ``+Inf`` bucket catches the overflow. Quantiles are estimated by
    locating the target rank's bucket and interpolating linearly inside
    it — exact enough for latency/residual distributions while keeping
    ``observe`` O(log #buckets).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self,
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"buckets must be distinct and ascending, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``); NaN when empty."""
        return quantile_from_counts(self.bounds, self.counts,
                                    self.count, q)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


def quantile_from_counts(bounds: Tuple[float, ...],
                         counts: Iterable[int], count: int,
                         q: float) -> float:
    """Interpolated quantile over per-bucket (non-cumulative) counts.

    The shared estimator behind :meth:`Histogram.quantile` and the
    windowed views of :func:`snapshot_delta`: ``counts`` has one entry
    per finite bound plus the trailing ``+Inf`` overflow bucket, and
    ``count`` is their sum. NaN when the window is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count == 0:
        return float("nan")
    rank = q * count
    cumulative = 0
    for i, n in enumerate(counts):
        cumulative += n
        if cumulative >= rank and n > 0:
            hi = bounds[i] if i < len(bounds) else bounds[-1]
            lo = bounds[i - 1] if i > 0 else 0.0
            if i >= len(bounds):
                return hi  # overflow bucket: clamp to the last bound
            frac = (rank - (cumulative - n)) / n
            return lo + frac * (hi - lo)
    return bounds[-1]


class _Family:
    """One named metric family: kind, help text, labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelSet, Any] = {}

    def child(self, labels: LabelSet) -> Any:
        made = self.children.get(labels)
        if made is None:
            if self.kind == "counter":
                made = Counter()
            elif self.kind == "gauge":
                made = Gauge()
            else:
                made = Histogram(self.buckets or DEFAULT_BUCKETS)
            self.children[labels] = made
        return made


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms.

    Metric getters are create-or-get: the first call registers the
    family (name, kind, help text, buckets); later calls return the
    existing child for the label set. Re-registering a name as a
    different kind raises ``ValueError`` — silent kind drift would
    corrupt the exposition.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}
        self._last_window: Optional[Dict[str, Any]] = None

    def _family(self, name: str, kind: str, help_text: str,
                buckets: Optional[Tuple[float, ...]] = None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}")
        return family

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        with self._lock:
            return self._family(name, "counter", help).child(
                _labelset(labels))

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        with self._lock:
            return self._family(name, "gauge", help).child(
                _labelset(labels))

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Iterable[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        with self._lock:
            return self._family(name, "histogram", help,
                                tuple(float(b) for b in buckets)
                                ).child(_labelset(labels))

    def families(self) -> List[_Family]:
        """Snapshot of the registered families, sorted by name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def reset(self) -> None:
        """Drop every registered family (tests, fresh CLI runs)."""
        with self._lock:
            self._families.clear()
            self._last_window = None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable view of every metric.

        Shape: ``{name: {"kind", "help", "values": [{"labels", ...}]}}``
        with per-kind payloads — counters/gauges carry ``value``;
        histograms carry ``count``, ``sum``, ``buckets`` (upper bound ->
        cumulative count) and the ``p50``/``p95``/``p99`` estimates.
        """
        # The whole walk runs under the registry lock: families() alone
        # would only pin the family *list*, leaving each family's
        # children dict free to grow mid-iteration (counter() on
        # another thread) and blow up the sorted() with a RuntimeError.
        # The lock is non-reentrant, so families() cannot be reused
        # here.
        with self._lock:
            families = [self._families[n]
                        for n in sorted(self._families)]
            return self._render_snapshot(families)

    def _render_snapshot(self, families: List["_Family"]
                         ) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for family in families:
            values = []
            for labels, child in sorted(family.children.items()):
                entry: Dict[str, Any] = {"labels": dict(labels)}
                if isinstance(child, Histogram):
                    cumulative = 0
                    buckets = {}
                    for bound, n in zip(child.bounds, child.counts):
                        cumulative += n
                        buckets[repr(bound)] = cumulative
                    buckets["+Inf"] = child.count
                    entry.update(count=child.count, sum=child.sum,
                                 buckets=buckets, p50=child.p50,
                                 p95=child.p95, p99=child.p99)
                else:
                    entry["value"] = child.value
                values.append(entry)
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "values": values}
        return out

    def window_snapshot(self) -> Dict[str, Any]:
        """Delta view since the previous ``window_snapshot`` call.

        The first call returns the full :meth:`snapshot` (the window
        opens at zero); every later call returns the *difference* —
        counter increments, histogram observations, and windowed
        p50/p95/p99 recomputed from the bucket deltas — accumulated
        since the previous call. Gauges report their current level
        (a gauge is a level, not a flow). This is the view the
        control-plane detectors poll: recent rates, not lifetime
        averages.
        """
        current = self.snapshot()
        with self._lock:
            previous = self._last_window
            self._last_window = current
        return snapshot_delta(previous, current)


def _delta_entry(kind: str, before: Optional[Dict[str, Any]],
                 after: Dict[str, Any]) -> Dict[str, Any]:
    """Windowed payload for one labeled child (before may be absent)."""
    entry: Dict[str, Any] = {"labels": dict(after["labels"])}
    if kind == "counter":
        prior = 0.0 if before is None else float(before["value"])
        # A registry reset mid-window shows up as a shrinking counter;
        # clamp to zero instead of reporting a negative rate.
        entry["value"] = max(float(after["value"]) - prior, 0.0)
    elif kind == "gauge":
        entry["value"] = float(after["value"])
    else:  # histogram
        prior_count = 0 if before is None else int(before["count"])
        prior_sum = 0.0 if before is None else float(before["sum"])
        count = max(int(after["count"]) - prior_count, 0)
        # Difference the cumulative bucket counts, then unroll them
        # into per-bucket counts for the windowed quantile estimate.
        bounds: List[float] = []
        delta_cums: List[int] = []
        buckets: Dict[str, int] = {}
        for bound_key, cum in after["buckets"].items():
            if bound_key == "+Inf":
                continue
            prior_cum = (0 if before is None
                         else int(before["buckets"].get(bound_key, 0)))
            delta = max(int(cum) - prior_cum, 0)
            bounds.append(float(bound_key))
            delta_cums.append(delta)
            buckets[bound_key] = delta
        buckets["+Inf"] = count
        per_bucket: List[int] = []
        previous_cum = 0
        for delta in delta_cums:
            per_bucket.append(max(delta - previous_cum, 0))
            previous_cum = delta
        per_bucket.append(max(count - previous_cum, 0))  # overflow
        tup = tuple(bounds)
        entry.update(
            count=count,
            sum=max(float(after["sum"]) - prior_sum, 0.0),
            buckets=buckets,
            p50=quantile_from_counts(tup, per_bucket, count, 0.50),
            p95=quantile_from_counts(tup, per_bucket, count, 0.95),
            p99=quantile_from_counts(tup, per_bucket, count, 0.99))
    return entry


def snapshot_delta(before: Optional[Dict[str, Any]],
                   after: Dict[str, Any]) -> Dict[str, Any]:
    """Per-window difference between two :meth:`MetricsRegistry.snapshot`
    dictionaries (``before`` taken earlier; ``None`` means "empty").

    Counters and histograms are differenced (they are monotone);
    gauges carry the ``after`` level. Histogram windows carry delta
    bucket counts and p50/p95/p99 recomputed *within the window* via
    :func:`quantile_from_counts`. Families or labeled children that
    only exist in ``after`` are differenced against zero; children
    that vanished (a reset) are dropped.
    """
    out: Dict[str, Any] = {}
    for name, family in after.items():
        prior_family = None if before is None else before.get(name)
        prior_values: Dict[str, Dict[str, Any]] = {}
        if prior_family is not None and \
                prior_family.get("kind") == family["kind"]:
            for value in prior_family["values"]:
                label_key = json.dumps(value["labels"], sort_keys=True)
                prior_values[label_key] = value
        values = []
        for value in family["values"]:
            label_key = json.dumps(value["labels"], sort_keys=True)
            values.append(_delta_entry(family["kind"],
                                       prior_values.get(label_key),
                                       value))
        out[name] = {"kind": family["kind"], "help": family["help"],
                     "values": values}
    return out
