"""Permissioned blockchain: a fixed miner set under both edge modes.

Scenario (Section IV): a consortium chain with a known set of 5 miners.
The edge provider either transfers overflow to the cloud (connected mode)
or rejects it against a hard capacity (standalone mode). The script solves
the full Stackelberg game in both modes and reproduces the paper's
qualitative conclusions:

* the connected mode discourages miners from buying edge units;
* the standalone ESP prices higher and earns more, the CSP less;
* the total units bought by the miners are mode-invariant at equal prices.

Run:  python examples/permissioned_network.py
"""

import numpy as np

from repro import EdgeMode, Prices, homogeneous, solve_stackelberg
from repro.core import (solve_connected_equilibrium,
                        solve_standalone_equilibrium, table2_standalone)


def main() -> None:
    base = homogeneous(5, 5000.0, reward=1000.0, fork_rate=0.2, h=0.8,
                       edge_cost=0.2, cloud_cost=0.1)
    standalone = base.with_mode(EdgeMode.STANDALONE, e_max=80.0)
    prices = Prices(p_e=2.0, p_c=1.0)

    # --- Follower stage at identical prices --------------------------- #
    eq_conn = solve_connected_equilibrium(base, prices)
    eq_sa = solve_standalone_equilibrium(standalone, prices)
    print("Follower stage at P_e=2, P_c=1 (sufficient budgets):")
    print(f"  connected : E={eq_conn.total_edge:8.2f}  "
          f"C={eq_conn.total_cloud:8.2f}  S={eq_conn.total:8.2f}")
    print(f"  standalone: E={eq_sa.total_edge:8.2f}  "
          f"C={eq_sa.total_cloud:8.2f}  S={eq_sa.total:8.2f}  "
          f"(capacity shadow price ν={eq_sa.nu:.3f})")
    print(f"  -> totals match across modes "
          f"({eq_conn.total:.2f} ≈ {eq_sa.total:.2f}); the standalone "
          "ESP sells up to its capacity")

    # --- Leader stage -------------------------------------------------- #
    se_conn = solve_stackelberg(base)
    se_sa = solve_stackelberg(standalone)
    print("\nLeader stage (Stackelberg equilibria):")
    print(f"  connected : {se_conn.summary()}")
    print(f"  standalone: {se_sa.summary()}")
    assert se_sa.prices.p_e > se_conn.prices.p_e
    assert se_sa.v_e > se_conn.v_e
    print("  -> standalone mode lets the ESP price higher and profit "
          "more (§IV-C.3)")

    # --- Closed-form check (Table II) ---------------------------------- #
    cf = table2_standalone(5, 1000.0, 0.2, 80.0, 0.2, 0.1)
    print("\nTable II closed forms (standalone, capacity binding):")
    print(f"  P_c* = {cf.prices.p_c:.4f}  (solver: "
          f"{se_sa.prices.p_c:.4f})")
    print(f"  P_e* = {cf.prices.p_e:.4f}  (solver: "
          f"{se_sa.prices.p_e:.4f}; the solver shades slightly below the "
          "clearing price to pre-empt CSP undercutting)")
    print(f"  e*   = {cf.miner.e:.4f} per miner  (solver: "
          f"{np.mean(se_sa.miners.e):.4f})")


if __name__ == "__main__":
    main()
