"""Beyond the paper: physical calibration and competing edge providers.

Two extensions composed end-to-end:

1. **Topology calibration** — instead of assuming ``D_avg`` and ``β``,
   build the Fig.-1 network as a real graph (miners meshed over metro
   links, ESP one LAN hop away, CSP across a WAN), gossip blocks over it,
   and derive the game parameters from block size and bandwidths.
2. **Edge competition** — replace the monopoly ESP with ``m`` competing
   providers and compute the symmetric Bertrand–Edgeworth equilibrium:
   entry erodes the edge premium that the paper's monopolist enjoys.

Run:  python examples/edge_competition.py
"""

from repro.core import Prices, homogeneous, solve_connected_equilibrium
from repro.core.multi_edge import (EdgeSupplier, MultiEdgeMarket,
                                   best_response_price, clear_market,
                                   symmetric_equilibrium)
from repro.network import (GossipModel, calibrate_game_delays,
                           edge_cloud_topology)


def main() -> None:
    # --- 1. Calibrate the game from a physical topology ---------------- #
    graph = edge_cloud_topology(n_miners=30, peer_degree=4, seed=7)
    print("Topology: 30 miners, metro mesh, ESP on LAN, CSP over WAN")
    print(f"{'block size':>12} {'cloud prop':>11} {'D_avg':>8} "
          f"{'beta':>7} {'edge share':>11}")
    chosen = None
    for block_size in (1e5, 1e6, 8e6, 3.2e7):
        cal = calibrate_game_delays(graph, GossipModel(block_size=
                                                       block_size))
        params = homogeneous(5, 200.0, reward=1500.0,
                             fork_rate=cal.fork_rate, h=0.8,
                             d_avg=cal.d_avg)
        eq = solve_connected_equilibrium(params, Prices(2.0, 1.0))
        share = eq.total_edge / eq.total
        print(f"{block_size:12.0f} {cal.cloud_delay:10.2f}s "
              f"{cal.d_avg:7.2f}s {cal.fork_rate:7.4f} {share:11.1%}")
        if block_size == 8e6:  # repro: noqa[RPR002] — literal grid point
            chosen = cal
    print("  -> bigger blocks make the cloud riskier; demand migrates "
          "to the edge\n")

    # --- 2. Let edge providers compete ---------------------------------- #
    market = MultiEdgeMarket(n=5, reward=1500.0, beta=chosen.fork_rate,
                             h=1.0, p_c=1.0)
    capacity = 60.0
    print(f"Edge market at beta={chosen.fork_rate:.3f} "
          f"(capacity {capacity:.0f} units per provider):")
    mono = [EdgeSupplier(price=2.0, capacity=capacity, unit_cost=0.2)]
    p_mono = best_response_price(market, mono, 0)
    clearing = clear_market(market, [EdgeSupplier(p_mono, capacity, 0.2)])
    print(f"  m=1 (the paper's setting): P_e*={p_mono:.3f}, "
          f"profit={clearing.profits[0]:.1f}")
    for m in (2, 4, 8):
        eq = symmetric_equilibrium(market, m, capacity, 0.2)
        print(f"  m={m}: P_e*={eq.price:.3f} ({eq.regime}), per-ESP "
              f"profit={eq.per_supplier_profit:.1f}, total edge units "
              f"{eq.per_supplier_sales * m:.0f}, "
              f"no-deviation verified={eq.verified}")
    print("  -> competition transfers the edge premium from provider "
          "profits to the miners")


if __name__ == "__main__":
    main()
