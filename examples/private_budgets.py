"""Incomplete information: budgets as private types (extension EXT9).

The paper notes that in practice "the miner's action is the private
information which is unobservable by others" and reaches for
reinforcement learning. For the root cause — private budgets — the exact
answer is computable: a symmetric Bayesian Nash equilibrium over a finite
type distribution. This example solves it and measures the value of
information per type against the full-information benchmark.

Run:  python examples/private_budgets.py
"""

import itertools
import math

from repro.core import (GameParameters, Prices,
                        solve_connected_equilibrium)
from repro.core.bayesian import (BayesianMinerGame, BudgetType,
                                 solve_bayesian_equilibrium)

N = 5
TYPES = [BudgetType(50.0, 0.4), BudgetType(150.0, 0.4),
         BudgetType(400.0, 0.2)]
PRICES = Prices(p_e=2.0, p_c=1.0)


def full_information_benchmark(type_index: int) -> tuple:
    """Expected (e, U) of a type under full information, enumerating the
    opponents' multinomial type profiles exactly."""
    probs = [t.probability for t in TYPES]
    me = TYPES[type_index]
    fi_e = fi_u = 0.0
    for counts in itertools.product(range(N), repeat=len(TYPES)):
        if sum(counts) != N - 1:
            continue
        coef = math.factorial(N - 1)
        weight = 1.0
        for c, q in zip(counts, probs):
            coef //= math.factorial(c)
            weight *= q ** c
        weight *= coef
        budgets = [me.budget]
        for j, c in enumerate(counts):
            budgets += [TYPES[j].budget] * c
        params = GameParameters(reward=1000.0, fork_rate=0.2,
                                budgets=budgets, h=0.8)
        eq = solve_connected_equilibrium(params, PRICES)
        fi_e += weight * float(eq.e[0])
        fi_u += weight * float(eq.utilities[0])
    return fi_e, fi_u


def main() -> None:
    game = BayesianMinerGame(N, TYPES, reward=1000.0, fork_rate=0.2,
                             h=0.8)
    bne = solve_bayesian_equilibrium(game, PRICES)
    print("Symmetric Bayesian NE (budgets private, i.i.d. types):")
    print(f"{'budget':>8} {'prob':>5} {'e*':>8} {'c*':>9} {'U (BNE)':>9} "
          f"{'U (full info)':>14} {'VoI':>7}")
    for k, t in enumerate(TYPES):
        e, c = bne.request(k)
        _, fi_u = full_information_benchmark(k)
        voi = fi_u - float(bne.utilities[k])
        print(f"{t.budget:8.0f} {t.probability:5.1f} {e:8.3f} {c:9.3f} "
              f"{bne.utilities[k]:9.2f} {fi_u:14.2f} {voi:7.2f}")
    print("\nReading: budget-bound types spend everything either way — "
          "privacy costs them nothing;")
    print("the unconstrained type pays for not knowing its rivals "
          "(it hedges instead of tailoring).")


if __name__ == "__main__":
    main()
