"""End-to-end: equilibrium strategies -> offloading market -> real chain.

This example exercises the full substrate stack instead of the analytic
shortcut:

1. miners solve the standalone-mode GNEP for their request vectors;
2. the requests go through the offloading market (ESP capacity, dispatch,
   billing) for one provisioning epoch;
3. the purchased units mine an actual blockchain with the event-driven
   simulator (exponential PoW races, cloud propagation delay, fork
   resolution on a real block tree);
4. empirical win shares are compared to the paper's ``W_i`` formula.

Run:  python examples/mining_simulation.py
"""

import numpy as np

from repro.blockchain import (Difficulty, EventDrivenSimulator, ForkModel,
                              MinerNode, PropagationModel)
from repro.core import EdgeMode, Prices, homogeneous, \
    solve_standalone_equilibrium
from repro.core.winning import w_full
from repro.offloading import (CloudProvider, Dispatcher, EdgeProvider,
                              ResourceRequest)

BETA = 0.2
BLOCKS = 20000


def main() -> None:
    # --- 1. Equilibrium requests --------------------------------------- #
    params = homogeneous(5, 1000.0, reward=1000.0, fork_rate=BETA,
                         mode=EdgeMode.STANDALONE, e_max=80.0)
    prices = Prices(p_e=2.0, p_c=1.0)
    eq = solve_standalone_equilibrium(params, prices)
    print("GNEP equilibrium requests (standalone, E_max=80):")
    for i in range(params.n):
        print(f"  miner {i}: e={eq.e[i]:6.2f}  c={eq.c[i]:6.2f}")
    print(f"  aggregate edge demand {eq.total_edge:.2f} == capacity")

    # --- 2. Provisioning epoch through the market ---------------------- #
    esp = EdgeProvider(price=prices.p_e, unit_cost=0.2, capacity=80.0)
    csp = CloudProvider(price=prices.p_c, unit_cost=0.1)
    dispatcher = Dispatcher(esp, csp)
    requests = [ResourceRequest(i, float(eq.e[i]), float(eq.c[i]))
                for i in range(params.n)]
    allocations = dispatcher.dispatch_all(requests)
    rejected = [a for a in allocations
                if a.edge_units == 0.0  # repro: noqa[RPR002] — sentinel
                and a.request.edge_units > 0]
    print(f"\nDispatch: {len(allocations) - len(rejected)}/5 edge "
          f"requests admitted (equilibrium fits the capacity exactly)")
    print(f"  ESP profit this epoch: {esp.account.profit:8.2f}")
    print(f"  CSP profit this epoch: {csp.account.profit:8.2f}")

    # --- 3. Mine a real chain ------------------------------------------ #
    fork = ForkModel()
    d_avg = fork.delay_for_fork_rate(BETA)
    nodes = [MinerNode(i, a.edge_units, a.cloud_units)
             for i, a in enumerate(allocations)]
    total_units = sum(n.total_units for n in nodes)
    sim = EventDrivenSimulator(
        nodes, Difficulty(unit_solve_time=total_units * 50.0),
        PropagationModel(cloud_delay=d_avg), reward=1000.0, seed=11)
    result = sim.run(BLOCKS)
    print(f"\nMined {BLOCKS} canonical blocks in "
          f"{result.elapsed / 3600:.1f} simulated hours "
          f"(orphan rate {result.stats.orphan_rate:.3%}, "
          f"chain valid: {result.chain.validate()})")

    # --- 4. Compare with the paper's winning probabilities ------------- #
    e = np.array([a.edge_units for a in allocations])
    c = np.array([a.cloud_units for a in allocations])
    rate_edge = e.sum() / (total_units * 50.0)
    beta_emergent = 1.0 - np.exp(-rate_edge * d_avg)
    model = w_full(e, c, beta_emergent)
    shares = result.win_shares
    print(f"\nEmpirical win shares vs W_i (emergent "
          f"β={beta_emergent:.4f}):")
    for i in range(params.n):
        print(f"  miner {i}: simulated {shares[i]:.4f}  "
              f"model {model[i]:.4f}")
    err = float(np.max(np.abs(shares - model)))
    print(f"  max deviation {err:.4f} (sampling error at {BLOCKS} blocks)")


if __name__ == "__main__":
    main()
