"""Permissionless blockchain: population uncertainty and learning miners.

Scenario (Sections V-VI): miners join and leave freely, so the miner count
is Gaussian. The script:

1. solves the expected-utility symmetric equilibrium for a fixed vs an
   uncertain population and shows the paper's finding — uncertainty makes
   miners *more aggressive* at the edge, pushing expected demand beyond
   the ESP's capacity;
2. runs the Section VI-C reinforcement-learning loop (T=50-block pricing
   epochs, ε-greedy miners, bandit-pricing SPs) and shows the learned
   strategies track the analytic fixed point, including adaptive SP
   pricing to a fixed point.

Run:  python examples/permissionless_network.py
"""

import numpy as np

from repro.core import DynamicGame, Prices, solve_dynamic_equilibrium
from repro.learning import PriceLearner, RLTrainer
from repro.population import FixedPopulation, GaussianPopulation

REWARD, BETA, BUDGET, E_MAX = 1000.0, 0.2, 200.0, 40.0
PRICES = Prices(p_e=2.0, p_c=1.0)


def main() -> None:
    # --- 1. Analytic fixed points -------------------------------------- #
    fixed = solve_dynamic_equilibrium(
        DynamicGame(FixedPopulation(5), reward=REWARD, fork_rate=BETA,
                    budget=BUDGET, e_max=E_MAX, weights="capacity"),
        PRICES)
    uncertain = solve_dynamic_equilibrium(
        DynamicGame(GaussianPopulation(mu=5, sigma=2.5), reward=REWARD,
                    fork_rate=BETA, budget=BUDGET, e_max=E_MAX,
                    weights="capacity"),
        PRICES)
    print("Expected-utility equilibria (standalone, E_max=40):")
    print(f"  fixed N=5     : e*={fixed.e:6.3f}  c*={fixed.c:7.3f}")
    print(f"  N~N(5, 2.5^2) : e*={uncertain.e:6.3f}  "
          f"c*={uncertain.c:7.3f}")
    print(f"  -> uncertainty inflates edge requests by "
          f"{100 * (uncertain.e / fixed.e - 1):.1f}%")
    print(f"  expected aggregate edge demand: "
          f"{uncertain.expected_edge_total:.1f} units vs capacity "
          f"{E_MAX:.0f} (overload probability "
          f"{uncertain.expected_overload:.0%})")

    # --- 2. The RL framework ------------------------------------------- #
    trainer = RLTrainer(GaussianPopulation(mu=5, sigma=2.5),
                        budget=BUDGET, reward=REWARD, fork_rate=BETA,
                        e_max=E_MAX, seed=7, grid_spend_levels=10,
                        grid_split_levels=41)
    epochs = [trainer.run_epoch(PRICES.p_e, PRICES.p_c, epoch_index=i)
              for i in range(3)]
    rl_e = float(np.mean([ep.mean_edge for ep in epochs]))
    print("\nRL framework at fixed prices (3 epochs x 50 blocks):")
    print(f"  learned e = {rl_e:.3f}  (model line: {uncertain.e:.3f})")
    print(f"  overload observed in {epochs[-1].overload_rate:.0%} of "
          "blocks")

    # --- 3. Adaptive SP pricing ---------------------------------------- #
    esp = PriceLearner(np.linspace(1.2, 3.6, 7), unit_cost=0.2, seed=1)
    csp = PriceLearner(np.linspace(0.4, 1.6, 7), unit_cost=0.1, seed=2)
    result = trainer.train(esp, csp, max_epochs=40, patience=4)
    print("\nAdaptive pricing (bandit SPs over epochs):")
    print(f"  converged={result.converged} after {len(result.epochs)} "
          f"epochs: P_e={result.final_p_e:.2f}, "
          f"P_c={result.final_p_c:.2f}")
    print(f"  ESP price premium survives learning: "
          f"{result.final_p_e > result.final_p_c}")


if __name__ == "__main__":
    main()
