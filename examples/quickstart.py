"""Quickstart: solve the miner subgame and the full Stackelberg game.

Five mobile miners offload PoW computation to an edge provider (fast but
pricey) and a cloud provider (cheap but slow). This script:

1. solves the connected-mode miner equilibrium at fixed prices and checks
   it against the paper's closed forms (Theorem 3 / Corollary 1);
2. verifies nobody can profit from a unilateral deviation;
3. solves the full two-stage Stackelberg game for equilibrium prices.

Run:  python examples/quickstart.py
"""

from repro import Prices, homogeneous, solve_connected_equilibrium, \
    solve_stackelberg, verify_miner_equilibrium
from repro.core import binding_budget_threshold, \
    homogeneous_miner_equilibrium


def main() -> None:
    # --- 1. The miner subgame at announced prices -------------------- #
    params = homogeneous(
        5, 200.0,            # five miners, $200 budget each
        reward=1000.0,       # block reward R
        fork_rate=0.2,       # β: cloud blocks orphaned 20% of the time
        h=0.8,               # ESP satisfies 80% of edge requests locally
        edge_cost=0.2, cloud_cost=0.1)
    prices = Prices(p_e=2.0, p_c=1.0)

    eq = solve_connected_equilibrium(params, prices)
    print("Miner subgame equilibrium")
    print("  " + eq.summary())
    print(f"  per-miner request: e*={eq.e[0]:.2f} ESP units, "
          f"c*={eq.c[0]:.2f} CSP units")
    print(f"  per-miner utility: {eq.utilities[0]:.2f}")

    # --- 2. Cross-check against the closed forms --------------------- #
    threshold = binding_budget_threshold(5, 1000.0, 0.2, 0.8)
    closed = homogeneous_miner_equilibrium(5, 200.0, 1000.0, 0.2, 0.8,
                                           prices)
    print(f"\nClosed form ({closed.regime} regime; "
          f"budget threshold = {threshold:.1f}):")
    print(f"  e*={closed.e:.4f}, c*={closed.c:.4f} "
          f"(solver: {eq.e[0]:.4f}, {eq.c[0]:.4f})")
    assert abs(closed.e - eq.e[0]) < 1e-4
    assert verify_miner_equilibrium(eq), "no profitable deviation exists"
    print("  verified: no miner has a profitable unilateral deviation")

    # --- 3. The full Stackelberg game --------------------------------- #
    se = solve_stackelberg(params)
    print("\nStackelberg equilibrium (leaders set prices first)")
    print("  " + se.summary())
    print(f"  the ESP charges a premium of "
          f"{se.prices.p_e - se.prices.p_c:.3f} $/unit for zero latency")


if __name__ == "__main__":
    main()
