"""Tests for the online equilibrium service (repro.service)."""
