"""HTTP transport smoke: the stdlib-asyncio server end to end over a
real socket, including admin and observability endpoints."""

import asyncio

import numpy as np

from repro.core import Prices, homogeneous
from repro.serving import ScenarioSpec, ServingEngine
from repro.service import EquilibriumService, HttpClient, ServiceServer
from repro.telemetry import parse_prometheus, telemetry_session


def miner_spec(budget=200.0):
    params = homogeneous(5, budget, reward=1500.0, fork_rate=0.2,
                         h=0.8)
    return ScenarioSpec(params, Prices(p_e=2.0, p_c=1.0))


async def _with_server(body):
    """Start service+server on an ephemeral port, run ``body(client,
    service)``, tear everything down."""
    service = EquilibriumService(max_inflight=4, max_queue=64)
    server = ServiceServer(service, port=0)
    await server.start()
    client = HttpClient(port=server.port)
    try:
        return await body(client, service)
    finally:
        await client.close()
        await server.stop()
        service.close()


class TestHttpRoundTrip:
    def test_solve_matches_direct_engine(self):
        async def body(client, service):
            return await client.solve(miner_spec(),
                                      include_result=True)

        payload = asyncio.run(_with_server(body))
        assert payload["http_status"] == 200
        assert payload["status"] == "ok"
        assert payload["source"] == "solved"
        direct = ServingEngine().serve(miner_spec())
        np.testing.assert_allclose(payload["result"]["e"],
                                   direct.value.e, rtol=1e-12)
        np.testing.assert_allclose(payload["result"]["c"],
                                   direct.value.c, rtol=1e-12)

    def test_repeat_solve_served_from_cache(self):
        async def body(client, service):
            first = await client.solve(miner_spec())
            second = await client.solve(miner_spec())
            return first, second

        first, second = asyncio.run(_with_server(body))
        assert first["source"] == "solved"
        assert second["source"] == "memory"

    def test_healthz_stats_and_admin(self):
        async def body(client, service):
            health = await client.healthz()
            await client.solve(miner_spec())
            stats = await client.stats()
            version = await client.invalidate()
            return health, stats, version

        health, stats, version = asyncio.run(_with_server(body))
        assert health["status"] == "ok"
        assert stats["requests"] == 1 and stats["solves"] == 1
        assert version == 1

    def test_metrics_endpoint_exposes_service_series(self):
        async def body(client, service):
            await client.solve(miner_spec())
            await client.solve(miner_spec())
            return await client.metrics_text()

        with telemetry_session():
            text = asyncio.run(_with_server(body))
        samples = parse_prometheus(text)
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample["name"], []).append(sample)
        assert "service_requests_total" in by_name
        assert "service_request_seconds_count" in by_name
        total = sum(s["value"] for s in
                    by_name["service_requests_total"])
        assert total == 2

    def test_unknown_route_is_404_and_bad_spec_400(self):
        async def body(client, service):
            missing = await client.request("GET", "/nope")
            bad = await client.request(
                "POST", "/solve", {"nonsense": 1})
            return missing, bad

        (missing_status, _), (bad_status, bad_doc) = asyncio.run(
            _with_server(body))
        assert missing_status == 404
        assert bad_status == 400
        assert "error" in bad_doc

    def test_admission_admin_endpoint_resizes(self):
        async def body(client, service):
            status, doc = await client.request(
                "POST", "/admin/admission", {"max_inflight": 2})
            return status, doc, service.max_inflight

        status, doc, inflight = asyncio.run(_with_server(body))
        assert status == 200
        assert doc["max_inflight"] == 2.0
        assert inflight == 2
