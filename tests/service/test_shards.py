"""Sharded scenario cache: routing stability, aggregate stats, and the
ScenarioCache duck-type contract the engine relies on."""

import pytest

from repro.exceptions import ConfigurationError
from repro.service import ShardedScenarioCache, shard_index


class TestRouting:
    def test_shard_index_stable_and_bounded(self):
        keys = [f"connected:auto:{i:032x}" for i in range(256)]
        first = [shard_index(k, 8) for k in keys]
        second = [shard_index(k, 8) for k in keys]
        assert first == second
        assert all(0 <= s < 8 for s in first)

    def test_keys_spread_across_shards(self):
        keys = [f"connected:auto:{i:032x}" for i in range(256)]
        used = {shard_index(k, 8) for k in keys}
        assert len(used) == 8

    def test_same_key_same_shard_instance(self):
        cache = ShardedScenarioCache(n_shards=4)
        assert cache.shard_for("k") is cache.shard_for("k")


class TestDuckType:
    def test_put_get_contains_len(self):
        cache = ShardedScenarioCache(n_shards=4, maxsize=64)
        for i in range(16):
            cache.put(f"key-{i}", i)
        assert len(cache) == 16
        assert cache.get("key-3") == 3
        assert "key-3" in cache and "absent" not in cache
        assert sum(cache.shard_sizes()) == 16

    def test_aggregate_stats_sum_over_shards(self):
        cache = ShardedScenarioCache(n_shards=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats
        assert stats.puts == 1
        assert stats.hits == 1
        assert stats.misses == 1

    def test_maxsize_setter_and_resize(self):
        cache = ShardedScenarioCache(n_shards=4, maxsize=64)
        assert cache.maxsize >= 64
        cache.maxsize = 128
        assert cache.maxsize >= 128
        assert all(s.maxsize >= 32 for s in
                   (cache.shard_for(f"k{i}") for i in range(4)))

    def test_invalidate_bumps_every_shard(self):
        cache = ShardedScenarioCache(n_shards=4)
        cache.put("a", 1)
        version = cache.invalidate()
        assert version == 1
        assert cache.version == 1
        assert cache.get("a") is None

    def test_snapshot_restore_round_trip(self):
        cache = ShardedScenarioCache(n_shards=4)
        cache.put("a", 1)
        cache.put("b", 2)
        snap = cache.snapshot_entries()
        cache.clear()
        assert len(cache) == 0
        cache.restore_entries(snap)
        assert cache.get("a") == 1 and cache.get("b") == 2

    def test_ttl_expires_on_injected_clock(self):
        now = [0.0]
        cache = ShardedScenarioCache(n_shards=2, ttl=5.0,
                                     clock=lambda: now[0])
        cache.put("k", 1)
        assert cache.get("k") == 1
        now[0] = 5.1
        assert cache.get("k") is None
        assert cache.stats.expired == 1

    def test_items_iterates_all_shards(self):
        cache = ShardedScenarioCache(n_shards=4)
        for i in range(8):
            cache.put(f"k{i}", i)
        assert dict(cache.items()) == {f"k{i}": i for i in range(8)}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedScenarioCache(n_shards=0)

    def test_to_dict_shape(self):
        doc = ShardedScenarioCache(n_shards=2).to_dict()
        assert doc["n_shards"] == 2
        assert "shard_sizes" in doc and "stats" in doc
