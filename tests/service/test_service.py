"""The service core: coalescing determinism, shedding, TTL/versioned
invalidation, and the operational seams."""

import asyncio

import numpy as np
import pytest

from repro.core import Prices, homogeneous
from repro.exceptions import ConfigurationError
from repro.service import EquilibriumService
from repro.serving import ScenarioSpec, ServingEngine
from repro.telemetry import TELEMETRY as _TEL
from repro.telemetry import telemetry_session


def miner_spec(budget=200.0, label=""):
    params = homogeneous(5, budget, reward=1500.0, fork_rate=0.2,
                         h=0.8)
    return ScenarioSpec(params, Prices(p_e=2.0, p_c=1.0), label=label)


class TestCoalescing:
    def test_concurrent_identical_requests_solve_once(self):
        """N concurrent requests for one key: exactly one solve, the
        rest coalesce — asserted on the telemetry counters too."""
        n = 12

        async def run(service):
            return await asyncio.gather(
                *(service.handle(miner_spec()) for _ in range(n)))

        with telemetry_session():
            service = EquilibriumService(max_inflight=4, max_queue=64)
            responses = asyncio.run(run(service))
            coalesced_total = _TEL.metrics.counter(
                "service_coalesced_total").value
            ok_total = _TEL.metrics.counter(
                "service_requests_total",
                labels={"outcome": "ok"}).value
            service.close()

        assert all(r.ok for r in responses)
        assert service.solves == 1
        assert service.coalesced == n - 1
        assert coalesced_total == n - 1
        assert ok_total == n
        assert sum(1 for r in responses if r.coalesced) == n - 1

    def test_coalesced_results_bit_identical_to_direct_serve(self):
        async def run(service):
            return await asyncio.gather(
                *(service.handle(miner_spec()) for _ in range(8)))

        service = EquilibriumService()
        responses = asyncio.run(run(service))
        service.close()

        direct = ServingEngine().serve(miner_spec())
        assert direct.ok
        for response in responses:
            np.testing.assert_array_equal(response.result.value.e,
                                          direct.value.e)
            np.testing.assert_array_equal(response.result.value.c,
                                          direct.value.c)
        # Waiters share the winner's result object outright.
        winners = {id(r.result) for r in responses}
        assert len(winners) == 1

    def test_distinct_keys_do_not_coalesce(self):
        async def run(service):
            specs = [miner_spec(150.0), miner_spec(250.0)]
            return await asyncio.gather(
                *(service.handle(s) for s in specs))

        service = EquilibriumService()
        responses = asyncio.run(run(service))
        service.close()
        assert all(r.ok for r in responses)
        assert service.solves == 2
        assert service.coalesced == 0

    def test_cache_hit_answers_inline(self):
        async def run(service):
            first = await service.handle(miner_spec())
            second = await service.handle(miner_spec())
            return first, second

        service = EquilibriumService()
        first, second = asyncio.run(run(service))
        service.close()
        assert first.result.source == "solved"
        assert second.result.source == "memory"
        assert service.solves == 1


class TestShedding:
    def test_queue_full_sheds_with_429(self):
        async def run(service):
            specs = [miner_spec(100.0 + 10.0 * i) for i in range(8)]
            return await asyncio.gather(
                *(service.handle(s) for s in specs))

        service = EquilibriumService(max_inflight=1, max_queue=1)
        responses = asyncio.run(run(service))
        service.close()
        shed = [r for r in responses if r.status == 429]
        served = [r for r in responses if r.ok]
        assert len(shed) == 6 and len(served) == 2
        assert {r.shed_reason for r in shed} == {"queue-full"}

    def test_rate_gate_sheds_before_keying(self):
        now = [0.0]

        async def run(service):
            return [await service.handle(miner_spec())
                    for _ in range(3)]

        service = EquilibriumService(rate=1.0, burst=2.0,
                                     clock=lambda: now[0])
        responses = asyncio.run(run(service))
        service.close()
        assert [r.status for r in responses] == [200, 200, 429]
        assert responses[2].shed_reason == "rate"
        assert responses[2].key == ""


class TestTtlAndInvalidation:
    def test_ttl_expiry_forces_a_fresh_solve(self):
        now = [0.0]

        async def run(service):
            a = await service.handle(miner_spec())
            b = await service.handle(miner_spec())
            now[0] = 6.0  # beyond the 5s TTL
            c = await service.handle(miner_spec())
            return a, b, c

        service = EquilibriumService(ttl=5.0, clock=lambda: now[0])
        a, b, c = asyncio.run(run(service))
        service.close()
        assert a.result.source == "solved"
        assert b.result.source == "memory"
        assert c.result.source == "solved"
        assert service.solves == 2

    def test_invalidate_bumps_version_and_resolves(self):
        async def run(service):
            a = await service.handle(miner_spec())
            version = service.invalidate()
            b = await service.handle(miner_spec())
            return a, version, b

        service = EquilibriumService()
        a, version, b = asyncio.run(run(service))
        service.close()
        assert version == 1
        assert a.result.source == "solved"
        assert b.result.source == "solved"
        assert service.solves == 2
        # Equality is to solver tolerance, not bitwise: at n=5 the
        # default kernel="auto" resolves to the running sweep, which
        # accepts warm starts — the re-solve seeds from the retired
        # answer's warm-index entry and takes a different (equally
        # converged) trajectory.  The vectorized kernel (n >= 20)
        # ignores initial iterates and re-solves bit-identically.
        np.testing.assert_allclose(a.result.value.e,
                                   b.result.value.e,
                                   rtol=1e-7, atol=1e-7)


class TestSeams:
    def test_set_max_inflight_reflected_in_stats(self):
        service = EquilibriumService(max_inflight=8)
        service.set_max_inflight(2)
        assert service.max_inflight == 2
        doc = service.stats()
        assert doc["admission"]["max_inflight"] == 2.0
        assert doc["cache"]["entries"] == 0
        service.close()

    def test_engine_and_cache_dir_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EquilibriumService(engine=ServingEngine(),
                               cache_dir=tmp_path)

    def test_kernel_override_applied_before_keying(self):
        async def run(service):
            return await service.handle(miner_spec())

        service = EquilibriumService()
        service.engine.set_kernel_override("scalar")
        response = asyncio.run(run(service))
        service.close()
        assert response.ok
        assert response.result.spec.kernel == "scalar"
        # The coalescing key matches what the engine cached under —
        # not the key of the kernel the caller asked for.
        assert response.key == service.engine.key_for(
            response.result.spec)
        assert response.key != ServingEngine().key_for(miner_spec())
