"""The load harness: seeded determinism, report accounting, SLO
verdicts, and quantiles sourced from the telemetry histograms."""

import asyncio
import json
import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.service import (EquilibriumService, InProcessClient,
                           LoadPlan, request_indices, run_load,
                           scenario_pool)
from repro.telemetry import telemetry_session


def small_plan(**overrides):
    base = dict(requests=300, unique=16, mix="zipf", burst=32, seed=7)
    base.update(overrides)
    return LoadPlan(**base)


class TestPlanAndStream:
    def test_request_stream_is_seed_deterministic(self):
        plan = small_plan()
        np.testing.assert_array_equal(request_indices(plan),
                                      request_indices(plan))

    def test_different_seeds_differ(self):
        a = request_indices(small_plan(seed=1))
        b = request_indices(small_plan(seed=2))
        assert not np.array_equal(a, b)

    def test_zipf_mix_skews_toward_low_ranks(self):
        counts = np.bincount(request_indices(small_plan(
            requests=5000, zipf_a=1.5)), minlength=16)
        assert counts[0] > counts[-1]
        assert counts[0] > 5000 / 16  # head rank beats uniform share

    def test_uniform_mix_covers_all_ranks(self):
        idx = request_indices(small_plan(mix="uniform",
                                         requests=2000))
        assert set(np.unique(idx)) == set(range(16))

    def test_pool_specs_are_unique_and_seeded(self):
        plan = small_plan()
        pool_a = scenario_pool(plan)
        pool_b = scenario_pool(plan)
        assert len(pool_a) == 16
        assert len({spec.params.budgets[0] for spec in pool_a}) == 16
        for a, b in zip(pool_a, pool_b):
            np.testing.assert_array_equal(a.params.budget_array,
                                          b.params.budget_array)

    def test_invalid_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            small_plan(requests=0)
        with pytest.raises(ConfigurationError):
            small_plan(mix="bursty-nonsense")


class TestRunLoad:
    def run(self, plan, **service_kwargs):
        kwargs = dict(max_inflight=8, max_queue=512)
        kwargs.update(service_kwargs)
        with telemetry_session():
            service = EquilibriumService(**kwargs)
            client = InProcessClient(service)
            try:
                report = asyncio.run(run_load(client, plan))
            finally:
                service.close()
        return report, service

    def test_replay_solves_each_key_once(self):
        plan = small_plan()
        report, service = self.run(plan)
        assert report.requests == 300
        assert report.errors == 0
        assert report.shed_total == 0
        assert report.ok == 300
        assert report.coalesced > 0
        assert report.solves == report.unique_keys
        assert report.solves == service.solves
        assert not report.failed and report.slo_ok

    def test_quantiles_come_from_telemetry_histogram(self):
        report, _ = self.run(small_plan())
        assert not math.isnan(report.p50)
        assert not math.isnan(report.p99)
        assert report.p50 <= report.p95 <= report.p99

    def test_slo_breach_marks_report_failed(self):
        report, _ = self.run(small_plan(slo_p50=0.0))
        [check] = [c for c in report.slo_checks() if not c["ok"]]
        assert check["quantile"] == "p50"
        assert not report.slo_ok
        assert report.failed

    def test_overload_sheds_only_queue_full(self):
        plan = small_plan(requests=256, mix="uniform", unique=64,
                          burst=128)
        report, _ = self.run(plan, max_inflight=1, max_queue=1)
        assert report.errors == 0
        assert report.shed_total > 0
        assert set(report.shed) == {"queue-full"}
        assert report.solves == report.unique_ok_keys
        # Sheds are explicit backpressure, not errors: the verdict
        # stays clean unless an SLO target or a request failed.
        assert not report.failed

    def test_report_to_dict_is_json_ready(self):
        report, _ = self.run(small_plan())
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["requests"] == 300
        assert doc["plan"]["seed"] == 7
        assert "p95" in doc["latency"] and "rps" in doc
