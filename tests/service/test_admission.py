"""Token bucket and admission controller: shed reasons, queue bounds,
and the thread-safe resize seam."""

import asyncio
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.service import (SHED_QUEUE_FULL, SHED_RATE,
                           AdmissionController, TokenBucket)


class TestTokenBucket:
    def test_burst_then_refill_on_injected_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst spent, no time passed
        now[0] = 1.0  # one second -> one token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_burst_defaults_to_rate(self):
        bucket = TokenBucket(rate=3.0, clock=lambda: 0.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0)


class TestAdmissionController:
    def test_rate_shed_counted(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: 0.0)
        ctl = AdmissionController(max_inflight=4, max_queue=4,
                                  bucket=bucket)
        assert ctl.check_rate() is None
        assert ctl.check_rate() == SHED_RATE
        assert ctl.shed[SHED_RATE] == 1

    def test_queue_full_sheds_past_bound(self):
        async def run():
            ctl = AdmissionController(max_inflight=1, max_queue=1)
            assert await ctl.acquire() is None  # takes the slot
            waiter = asyncio.ensure_future(ctl.acquire())  # queues
            await asyncio.sleep(0)
            assert await ctl.acquire() == SHED_QUEUE_FULL
            assert ctl.shed[SHED_QUEUE_FULL] == 1
            await ctl.release()  # wakes the queued waiter
            assert await waiter is None
            await ctl.release()

        asyncio.run(run())

    def test_resize_from_foreign_thread_wakes_waiters(self):
        async def run():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            assert await ctl.acquire() is None
            waiter = asyncio.ensure_future(ctl.acquire())
            await asyncio.sleep(0)
            thread = threading.Thread(target=ctl.resize, args=(2,))
            thread.start()
            thread.join()
            assert await asyncio.wait_for(waiter, timeout=2.0) is None
            assert ctl.max_inflight == 2
            await ctl.release()
            await ctl.release()

        asyncio.run(run())

    def test_resize_rejects_nonpositive(self):
        ctl = AdmissionController()
        with pytest.raises(ConfigurationError):
            ctl.resize(0)

    def test_to_dict_shape(self):
        ctl = AdmissionController(max_inflight=2, max_queue=3)
        doc = ctl.to_dict()
        assert doc["max_inflight"] == 2.0
        assert doc["max_queue"] == 3.0
        assert doc["inflight"] == 0.0
