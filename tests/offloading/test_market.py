"""Market rounds: dispatch + mining + settlement."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.offloading import (CloudProvider, EdgeProvider, OffloadingMarket,
                              ResourceRequest)


def _market(capacity=None, h=1.0, seed=0):
    esp = EdgeProvider(price=2.0, unit_cost=0.2, h=h, capacity=capacity,
                       seed=seed)
    csp = CloudProvider(price=1.0, unit_cost=0.1)
    return OffloadingMarket(esp, csp, reward=1000.0, fork_rate=0.2,
                            seed=seed)


def _requests(n=5, e=10.0, c=20.0):
    return [ResourceRequest(miner_id=i, edge_units=e, cloud_units=c)
            for i in range(n)]


class TestMarketRound:
    def test_exactly_one_winner(self):
        round_ = _market().play_round(_requests())
        assert 0 <= round_.winner < 5
        winners = (round_.payoffs > 0).sum()
        assert winners <= 1

    def test_payoff_accounting(self):
        round_ = _market().play_round(_requests())
        spend = 2.0 * 10.0 + 1.0 * 20.0
        for i, p in enumerate(round_.payoffs):
            if i == round_.winner:
                assert p == pytest.approx(1000.0 - spend)
            else:
                assert p == pytest.approx(-spend)

    def test_revenue_split(self):
        round_ = _market().play_round(_requests())
        assert round_.esp_revenue == pytest.approx(5 * 10.0 * 2.0)
        assert round_.csp_revenue == pytest.approx(5 * 20.0 * 1.0)

    def test_standalone_overload_shifts_revenue(self):
        market = _market(capacity=25.0)
        round_ = market.play_round(_requests())
        # Only two miners fit (10 + 10 <= 25, third rejected).
        assert round_.esp_revenue == pytest.approx(2 * 10.0 * 2.0)

    def test_empirical_win_rates_track_model(self):
        market = _market(seed=11)
        wins = np.zeros(5)
        reqs = _requests()
        for _ in range(4000):
            wins[market.play_round(reqs).winner] += 1
        rates = wins / wins.sum()  # repro: noqa[RPR003] — 4000 draws
        # Homogeneous miners: symmetric winning probability.
        assert np.max(np.abs(rates - 0.2)) < 0.03

    def test_validation(self):
        market = _market()
        with pytest.raises(ConfigurationError):
            market.play_round([])
        with pytest.raises(ConfigurationError):
            OffloadingMarket(EdgeProvider(price=1.0),
                             CloudProvider(price=1.0),
                             reward=0.0, fork_rate=0.2)
        zero = [ResourceRequest(miner_id=0, edge_units=0.0,
                                cloud_units=0.0)]
        with pytest.raises(ConfigurationError):
            market.play_round(zero)
