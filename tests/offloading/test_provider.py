"""Service providers: ledgers, admission, satisfaction sampling."""

import numpy as np
import pytest

from repro.exceptions import CapacityError, ConfigurationError
from repro.offloading import CloudProvider, EdgeProvider, ProviderAccount


class TestProviderAccount:
    def test_profit_accounting(self):
        acct = ProviderAccount(unit_cost=0.5)
        acct.record_sale(10.0, 2.0)
        assert acct.revenue == 20.0
        assert acct.operating_cost == 5.0
        assert acct.profit == 15.0

    def test_negative_sale_rejected(self):
        acct = ProviderAccount(unit_cost=0.0)
        with pytest.raises(ConfigurationError):
            acct.record_sale(-1.0, 2.0)


class TestCloudProvider:
    def test_never_refuses(self):
        csp = CloudProvider(price=1.0, unit_cost=0.1)
        charge = csp.provision(1e9)
        assert charge == pytest.approx(1e9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CloudProvider(price=0.0)
        with pytest.raises(ConfigurationError):
            CloudProvider(price=1.0, unit_cost=-0.1)
        with pytest.raises(ConfigurationError):
            CloudProvider(price=1.0, d_avg=-1.0)


class TestEdgeProviderConnected:
    def test_satisfaction_rate_converges_to_h(self):
        esp = EdgeProvider(price=2.0, h=0.7, seed=0)
        hits = sum(esp.sample_satisfaction() for _ in range(20000))
        assert hits / 20000 == pytest.approx(0.7, abs=0.01)

    def test_admit_bills_unconditionally(self):
        esp = EdgeProvider(price=2.0, h=0.7)
        assert esp.admit(10.0) == 20.0
        assert esp.account.units_sold == 10.0

    def test_unlimited_capacity_view(self):
        esp = EdgeProvider(price=2.0, h=0.7)
        assert esp.remaining_capacity == float("inf")
        assert not esp.standalone

    def test_try_admit_is_standalone_only(self):
        esp = EdgeProvider(price=2.0, h=0.7)
        with pytest.raises(ConfigurationError):
            esp.try_admit(1.0)


class TestEdgeProviderStandalone:
    def test_admits_until_capacity(self):
        esp = EdgeProvider(price=2.0, capacity=10.0)
        assert esp.try_admit(6.0)
        assert esp.try_admit(4.0)
        assert not esp.try_admit(0.5)
        assert esp.load == pytest.approx(10.0)

    def test_all_or_nothing(self):
        esp = EdgeProvider(price=2.0, capacity=10.0)
        assert esp.try_admit(8.0)
        # 3 > remaining 2: rejected entirely, not partially served.
        assert not esp.try_admit(3.0)
        assert esp.load == pytest.approx(8.0)

    def test_rejected_units_not_billed(self):
        esp = EdgeProvider(price=2.0, capacity=10.0)
        esp.try_admit(8.0)
        esp.try_admit(5.0)
        assert esp.account.revenue == pytest.approx(16.0)

    def test_reset_epoch(self):
        esp = EdgeProvider(price=2.0, capacity=10.0)
        esp.try_admit(10.0)
        esp.reset_epoch()
        assert esp.try_admit(10.0)

    def test_strict_admit_raises(self):
        esp = EdgeProvider(price=2.0, capacity=10.0)
        esp.try_admit(9.0)
        with pytest.raises(CapacityError):
            esp.admit(5.0)

    def test_sample_satisfaction_guarded(self):
        esp = EdgeProvider(price=2.0, capacity=10.0)
        with pytest.raises(ConfigurationError):
            esp.sample_satisfaction()

    def test_zero_request_always_admitted(self):
        esp = EdgeProvider(price=2.0, capacity=10.0)
        esp.try_admit(10.0)
        assert esp.try_admit(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EdgeProvider(price=2.0, capacity=0.0)
        with pytest.raises(ConfigurationError):
            EdgeProvider(price=2.0, h=1.5)
        with pytest.raises(ConfigurationError):
            EdgeProvider(price=0.0)
