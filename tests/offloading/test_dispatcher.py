"""Dispatch semantics under the two edge operation modes."""

import pytest

from repro.exceptions import ConfigurationError
from repro.offloading import (CloudProvider, Dispatcher, EdgeProvider,
                              ResourceRequest, ResponseStatus)


def _request(e=10.0, c=5.0, miner=0):
    return ResourceRequest(miner_id=miner, edge_units=e, cloud_units=c)


class TestRequest:
    def test_cost(self):
        r = _request()
        assert r.cost(2.0, 1.0) == 25.0
        assert r.total_units == 15.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResourceRequest(miner_id=-1, edge_units=1.0, cloud_units=1.0)
        with pytest.raises(ConfigurationError):
            ResourceRequest(miner_id=0, edge_units=-1.0, cloud_units=1.0)


class TestConnectedDispatch:
    def test_satisfied_request(self):
        esp = EdgeProvider(price=2.0, h=1.0)
        csp = CloudProvider(price=1.0)
        alloc = Dispatcher(esp, csp).dispatch(_request())
        assert alloc.status is ResponseStatus.SATISFIED
        assert alloc.edge_units == 10.0
        assert alloc.cloud_units == 5.0
        assert alloc.edge_charge == 20.0
        assert alloc.cloud_charge == 5.0

    def test_transfer_moves_units_to_cloud(self):
        # h below any random draw: every request transfers.
        esp = EdgeProvider(price=2.0, h=1e-12, seed=0)
        csp = CloudProvider(price=1.0)
        alloc = Dispatcher(esp, csp).dispatch(_request())
        assert alloc.status is ResponseStatus.TRANSFERRED
        assert alloc.edge_units == 0.0
        assert alloc.cloud_units == 15.0
        # Transferred units are billed at the CSP price.
        assert alloc.edge_charge == 0.0
        assert alloc.cloud_charge == 15.0

    def test_transfer_rate_statistics(self):
        esp = EdgeProvider(price=2.0, h=0.6, seed=1)
        csp = CloudProvider(price=1.0)
        dispatcher = Dispatcher(esp, csp)
        outcomes = [dispatcher.dispatch(_request()).status
                    for _ in range(5000)]
        rate = outcomes.count(ResponseStatus.TRANSFERRED) / 5000
        assert rate == pytest.approx(0.4, abs=0.03)

    def test_empty_edge_request(self):
        esp = EdgeProvider(price=2.0, h=0.5)
        csp = CloudProvider(price=1.0)
        alloc = Dispatcher(esp, csp).dispatch(_request(e=0.0))
        assert alloc.status is ResponseStatus.EMPTY
        assert alloc.cloud_charge == 5.0


class TestStandaloneDispatch:
    def _dispatcher(self, capacity=15.0):
        esp = EdgeProvider(price=2.0, capacity=capacity)
        csp = CloudProvider(price=1.0)
        return Dispatcher(esp, csp)

    def test_within_capacity_satisfied(self):
        alloc = self._dispatcher().dispatch(_request())
        assert alloc.status is ResponseStatus.SATISFIED

    def test_overload_rejected_keeps_cloud_part(self):
        d = self._dispatcher(capacity=15.0)
        first = d.dispatch(_request(e=10.0, miner=0))
        second = d.dispatch(_request(e=10.0, miner=1))
        assert first.status is ResponseStatus.SATISFIED
        assert second.status is ResponseStatus.REJECTED
        assert second.edge_units == 0.0
        assert second.cloud_units == 5.0
        assert second.edge_charge == 0.0

    def test_dispatch_all_resets_epoch(self):
        d = self._dispatcher(capacity=15.0)
        batch = [_request(e=10.0, miner=i) for i in range(2)]
        first_round = d.dispatch_all(batch)
        second_round = d.dispatch_all(batch)
        # Without the epoch reset the second round would reject everything.
        assert first_round[0].status is ResponseStatus.SATISFIED
        assert second_round[0].status is ResponseStatus.SATISFIED

    def test_fcfs_order_matters(self):
        d = self._dispatcher(capacity=12.0)
        allocs = d.dispatch_all([_request(e=10.0, miner=0),
                                 _request(e=10.0, miner=1),
                                 _request(e=2.0, miner=2)])
        statuses = [a.status for a in allocs]
        assert statuses == [ResponseStatus.SATISFIED,
                            ResponseStatus.REJECTED,
                            ResponseStatus.SATISFIED]
