"""Billing statements and invoices."""

import pytest

from repro.exceptions import ConfigurationError
from repro.offloading import (CloudProvider, Dispatcher, EdgeProvider,
                              ResourceRequest)
from repro.offloading.accounting import (build_invoices, build_statement)


def _allocations(capacity=None, h=1.0, seed=0):
    esp = EdgeProvider(price=2.0, h=h, capacity=capacity, seed=seed)
    csp = CloudProvider(price=1.0)
    requests = [ResourceRequest(i, 10.0, 20.0) for i in range(4)]
    return Dispatcher(esp, csp).dispatch_all(requests)


class TestInvoices:
    def test_served_lines(self):
        invoices = build_invoices(_allocations(), 2.0, 1.0)
        inv = invoices[0]
        assert inv.total == pytest.approx(2.0 * 10 + 1.0 * 20)
        venues = {(l.venue, l.disposition) for l in inv.lines}
        assert ("edge", "served") in venues
        assert ("cloud", "served") in venues

    def test_transferred_line(self):
        allocations = _allocations(h=1e-12, seed=1)  # everyone transfers
        invoices = build_invoices(allocations, 2.0, 1.0)
        inv = invoices[0]
        moved = [l for l in inv.lines if l.disposition == "transferred"]
        assert len(moved) == 1
        assert moved[0].units == pytest.approx(10.0)
        assert moved[0].unit_price == 1.0  # billed at the CSP price
        assert inv.total == pytest.approx(30.0)

    def test_rejected_line_costs_nothing(self):
        allocations = _allocations(capacity=25.0)  # third+ get rejected
        invoices = build_invoices(allocations, 2.0, 1.0)
        rejected = [l for inv in invoices.values() for l in inv.lines
                    if l.disposition == "rejected"]
        assert rejected
        assert all(l.amount == 0.0 for l in rejected)

    def test_totals_match_recorded_charges(self):
        allocations = _allocations(capacity=25.0)
        invoices = build_invoices(allocations, 2.0, 1.0)
        for alloc in allocations:
            inv = invoices[alloc.request.miner_id]
            assert inv.total == pytest.approx(alloc.total_charge)

    def test_render_contains_total(self):
        invoices = build_invoices(_allocations(), 2.0, 1.0)
        text = invoices[0].render()
        assert "Invoice — miner 0" in text
        assert "total" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_invoices([], 0.0, 1.0)


class TestStatement:
    def test_connected_statement(self):
        allocations = _allocations()
        st = build_statement(allocations, 2.0, 1.0)
        assert st.esp_units == pytest.approx(40.0)
        assert st.csp_units == pytest.approx(80.0)
        assert st.transferred_units == 0.0
        assert st.rejected_units == 0.0
        assert st.total_revenue == pytest.approx(40 * 2.0 + 80 * 1.0)

    def test_transfer_statement(self):
        allocations = _allocations(h=1e-12, seed=2)
        st = build_statement(allocations, 2.0, 1.0)
        assert st.esp_units == 0.0
        assert st.transferred_units == pytest.approx(40.0)
        assert st.csp_units == pytest.approx(120.0)

    def test_rejection_statement(self):
        allocations = _allocations(capacity=25.0)
        st = build_statement(allocations, 2.0, 1.0)
        assert st.rejected_units == pytest.approx(20.0)
        assert st.esp_units == pytest.approx(20.0)
