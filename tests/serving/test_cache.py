"""LRU scenario cache: counters, eviction, and the JSON disk layer."""

import threading

import numpy as np
import pytest

from repro.core import Prices, homogeneous, solve_connected_equilibrium
from repro.exceptions import ConfigurationError
from repro.serving import ScenarioCache, ScenarioSpec, scenario_key


def _solved_scenario(p_c=1.0):
    params = homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2, h=0.8)
    prices = Prices(p_e=2.0, p_c=p_c)
    spec = ScenarioSpec(params, prices)
    return spec, scenario_key(spec), \
        solve_connected_equilibrium(params, prices)


class TestMemoryLayer:
    def test_miss_then_hit_with_counters(self):
        cache = ScenarioCache()
        assert cache.get("nope") is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lookup_reports_layer(self):
        cache = ScenarioCache()
        assert cache.lookup("k") == (None, "miss")
        cache.put("k", "v")
        assert cache.lookup("k") == ("v", "memory")

    def test_lru_eviction_counts_and_keeps_recent(self):
        cache = ScenarioCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now LRU
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_meta_round_trip(self):
        cache = ScenarioCache()
        cache.put("k", 1, meta={"scheme": "auto"})
        assert cache.meta("k") == {"scheme": "auto"}
        assert cache.meta("absent") is None

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioCache(maxsize=0)

    def test_hit_rate_zero_when_idle(self):
        assert ScenarioCache().stats.hit_rate == 0.0

    def test_clear(self):
        cache = ScenarioCache()
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_puts_and_gets(self):
        cache = ScenarioCache(maxsize=64)

        def worker(tag):
            for i in range(200):
                cache.put(f"{tag}:{i % 80}", i)
                cache.get(f"{tag}:{(i * 7) % 80}")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 64
        assert cache.stats.puts == 800


class TestDiskLayer:
    def test_persists_and_reloads_across_instances(self, tmp_path):
        spec, key, eq = _solved_scenario()
        first = ScenarioCache(cache_dir=tmp_path)
        first.put(key, eq)
        assert (tmp_path / (key.replace(":", "_") + ".json")).exists()

        fresh = ScenarioCache(cache_dir=tmp_path)
        value, layer = fresh.lookup(key)
        assert layer == "disk"
        assert fresh.stats.disk_hits == 1 and fresh.stats.hits == 0
        np.testing.assert_allclose(value.e, eq.e, rtol=1e-12)
        np.testing.assert_allclose(value.c, eq.c, rtol=1e-12)
        assert value.prices == eq.prices
        # Promoted to memory: the second lookup is a memory hit.
        assert fresh.lookup(key)[1] == "memory"

    def test_corrupt_disk_file_is_a_miss(self, tmp_path):
        _, key, _ = _solved_scenario()
        (tmp_path / (key.replace(":", "_") + ".json")).write_text(
            "{not json")
        cache = ScenarioCache(cache_dir=tmp_path)
        assert cache.lookup(key) == (None, "miss")
        assert cache.stats.misses == 1

    def test_clear_disk(self, tmp_path):
        spec, key, eq = _solved_scenario()
        cache = ScenarioCache(cache_dir=tmp_path)
        cache.put(key, eq)
        cache.clear(disk=True)
        assert list(tmp_path.glob("*.json")) == []
        assert cache.lookup(key) == (None, "miss")


class TestCorruptionRecovery:
    def test_corrupt_file_is_unlinked_and_put_recovers(self, tmp_path):
        """A torn/corrupt disk entry must not shadow future writes:
        the bad file is removed on first read, and a subsequent put
        re-persists a loadable entry."""
        spec, key, eq = _solved_scenario()
        path = tmp_path / (key.replace(":", "_") + ".json")
        path.write_text('{"value": [truncated')
        cache = ScenarioCache(cache_dir=tmp_path)
        assert cache.lookup(key) == (None, "miss")
        assert not path.exists()  # corrupt payload removed, not kept

        cache.put(key, eq)
        fresh = ScenarioCache(cache_dir=tmp_path)
        value, layer = fresh.lookup(key)
        assert layer == "disk"
        np.testing.assert_allclose(value.e, eq.e, rtol=1e-12)

    def test_writes_leave_no_temp_files(self, tmp_path):
        cache = ScenarioCache(cache_dir=tmp_path)
        for p_c in (0.5, 1.0, 1.5, 2.0):
            _, key, eq = _solved_scenario(p_c)
            cache.put(key, eq)
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(list(tmp_path.glob("*.json"))) == 4


class TestTtlAndInvalidation:
    def test_ttl_expires_entries_on_injected_clock(self):
        now = [0.0]
        cache = ScenarioCache(ttl=10.0, clock=lambda: now[0])
        cache.put("k", 1)
        assert cache.get("k") == 1
        now[0] = 10.1
        assert cache.get("k") is None
        assert cache.stats.expired == 1
        assert "k" not in cache

    def test_invalidate_bumps_version_and_rejects_disk(self, tmp_path):
        spec, key, eq = _solved_scenario()
        cache = ScenarioCache(cache_dir=tmp_path)
        cache.put(key, eq)
        cache.invalidate()
        assert cache.version == 1
        assert cache.lookup(key) == (None, "miss")
        # A pre-invalidation disk payload is rejected by a fresh
        # instance at the same version.
        fresh = ScenarioCache(cache_dir=tmp_path)
        fresh.version = 1
        assert fresh.lookup(key) == (None, "miss")
