"""Nearest-neighbor warm-start index."""

import numpy as np

from repro.core import Prices, homogeneous, solve_connected_equilibrium
from repro.serving import ScenarioSpec, WarmStartIndex, scenario_key


def _scenario(p_c=1.0, reward=1500.0):
    params = homogeneous(5, 200.0, reward=reward, fork_rate=0.2, h=0.8)
    return ScenarioSpec(params, Prices(p_e=2.0, p_c=p_c))


def _solve(spec):
    return solve_connected_equilibrium(spec.params, spec.prices)


class TestWarmStartIndex:
    def test_empty_index_suggests_nothing(self):
        assert WarmStartIndex().suggest(_scenario()) is None

    def test_nearest_neighbor_wins(self):
        index = WarmStartIndex()
        for p_c in (0.8, 1.0, 1.2):
            spec = _scenario(p_c)
            index.add(spec, scenario_key(spec), _solve(spec))
        hit = index.suggest(_scenario(1.05))
        assert hit is not None
        assert hit.key == scenario_key(_scenario(1.0))
        assert hit.prices == Prices(2.0, 1.0)
        e, c = hit.profile
        assert e.shape == (5,) and c.shape == (5,)
        assert hit.distance < 0.1

    def test_far_neighbor_suppressed(self):
        index = WarmStartIndex(max_relative_distance=0.1)
        spec = _scenario(1.0)
        index.add(spec, scenario_key(spec), _solve(spec))
        assert index.suggest(_scenario(1.02)) is not None
        # reward 3x away: relative distance far beyond the cutoff
        assert index.suggest(_scenario(1.02, reward=4500.0)) is None

    def test_families_are_isolated(self):
        index = WarmStartIndex()
        miner = _scenario(1.0)
        index.add(miner, scenario_key(miner), _solve(miner))
        stackelberg = ScenarioSpec(miner.params)  # leader-stage family
        assert index.suggest(stackelberg) is None

    def test_retention_drops_oldest(self):
        index = WarmStartIndex(max_entries=2)
        specs = [_scenario(p) for p in (0.8, 1.0, 1.2)]
        for spec in specs:
            index.add(spec, scenario_key(spec), _solve(spec))
        assert len(index) == 2
        # 0.8 was evicted; nearest to 0.8 is now 1.0
        hit = index.suggest(_scenario(0.8))
        assert hit.key == scenario_key(_scenario(1.0))

    def test_foreign_result_types_ignored(self):
        index = WarmStartIndex()
        spec = _scenario()
        index.add(spec, scenario_key(spec), object())
        assert len(index) == 0

    def test_suggestion_profile_is_a_copy(self):
        index = WarmStartIndex()
        spec = _scenario()
        index.add(spec, scenario_key(spec), _solve(spec))
        hit = index.suggest(spec)
        hit.profile[0][:] = np.nan
        again = index.suggest(spec)
        assert np.all(np.isfinite(again.profile[0]))
