"""ServingEngine: batching, dedup, warm chaining, workers, errors."""

import numpy as np
import pytest

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium, solve_stackelberg)
from repro.exceptions import ConfigurationError
from repro.serving import ScenarioCache, ScenarioSpec, ServingEngine


def _params(**overrides):
    defaults = dict(reward=1500.0, fork_rate=0.2, h=0.8)
    defaults.update(overrides)
    return homogeneous(5, 200.0, **defaults)


def _grid(n=8, lo=0.5, hi=1.3):
    step = 0.0 if n == 1 else (hi - lo) / (n - 1)
    return [ScenarioSpec(_params(), Prices(2.0, round(lo + k * step, 9)))
            for k in range(n)]


class TestServeBatch:
    def test_results_align_with_input_order(self):
        engine = ServingEngine(max_workers=0)
        specs = _grid(5)
        results = engine.serve_batch(specs)
        assert [r.spec for r in results] == specs
        assert all(r.ok and r.source == "solved" for r in results)
        assert all(r.elapsed > 0 for r in results)

    def test_counters_track_misses_then_hits(self):
        engine = ServingEngine(max_workers=0)
        specs = _grid(6)
        engine.serve_batch(specs)
        assert engine.stats.misses == 6
        assert engine.stats.hits == 0
        results = engine.serve_batch(specs)
        assert engine.stats.hits == 6
        assert engine.stats.misses == 6
        assert engine.stats.hit_rate == pytest.approx(0.5)
        assert all(r.source == "memory" for r in results)

    def test_dedup_within_batch_solves_once(self):
        engine = ServingEngine(max_workers=0)
        spec = _grid(1)[0]
        results = engine.serve_batch([spec, spec, spec])
        assert engine.stats.misses == 1 and engine.stats.puts == 1
        assert results[0].source == "solved"
        assert {r.source for r in results[1:]} == {"dedup"}
        assert results[1].value is results[0].value

    def test_matches_direct_solver_exactly_when_cold(self):
        # Acceptance: the engine must be a transparent wrapper — a cold
        # serial solve is bit-identical to calling the solver directly.
        engine = ServingEngine(max_workers=0, warm_start=False,
                               use_guard=False)
        spec = _grid(1)[0]
        direct = solve_connected_equilibrium(spec.params, spec.prices,
                                             tol=spec.tol,
                                             kernel=spec.kernel)
        served = engine.serve(spec).value
        assert np.array_equal(served.e, direct.e)
        assert np.array_equal(served.c, direct.c)

    def test_warm_starts_chain_within_serial_batch(self):
        engine = ServingEngine(max_workers=0, warm_start=True)
        results = engine.serve_batch(_grid(8))
        warm_keys = [r.warm_key for r in results]
        assert warm_keys[0] is None  # nothing to warm-start from yet
        assert all(k is not None for k in warm_keys[1:])
        # Warm equilibria agree with cold ones within solver tolerance.
        cold = ServingEngine(max_workers=0, warm_start=False)
        for r_warm, r_cold in zip(results, cold.serve_batch(_grid(8))):
            np.testing.assert_allclose(r_warm.value.e, r_cold.value.e,
                                       atol=1e-6)
            np.testing.assert_allclose(r_warm.value.c, r_cold.value.c,
                                       atol=1e-6)

    def test_per_scenario_error_capture(self):
        engine = ServingEngine(max_workers=0, use_guard=False)
        good = _grid(1)[0]
        bad = ScenarioSpec(_params(), Prices(2.0, 1.0), scheme="bogus")
        results = engine.serve_batch([good, bad, good])
        assert results[0].ok
        assert not results[1].ok
        assert "bogus" in results[1].error
        assert results[1].value is None
        assert results[2].ok  # the batch survived the bad scenario
        assert engine.stats.puts == 1  # failures are never cached

    def test_stackelberg_scenarios(self):
        engine = ServingEngine(max_workers=0, warm_start=False,
                               use_guard=False)
        spec = ScenarioSpec(_params())
        result = engine.serve(spec)
        assert result.ok
        direct = solve_stackelberg(spec.params, demand_tol=spec.tol,
                                   kernel=spec.kernel)
        assert result.value.prices == direct.prices

    def test_extragradient_scheme_requires_standalone(self):
        engine = ServingEngine(max_workers=0, use_guard=False)
        bad = ScenarioSpec(_params(), Prices(2.0, 1.0),
                           scheme="extragradient")
        assert "standalone" in engine.serve(bad).error
        params = homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=80.0)
        ok = ScenarioSpec(params, Prices(2.0, 1.0),
                          scheme="extragradient")
        result = engine.serve(ok)
        assert result.ok and result.solver == "vi-extragradient"


class TestParallel:
    def test_parallel_matches_serial(self):
        specs = _grid(8)
        serial = ServingEngine(max_workers=0, warm_start=False,
                               use_guard=False).serve_batch(specs)
        parallel = ServingEngine(max_workers=2, warm_start=False,
                                 use_guard=False).serve_batch(specs)
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.value.e, p.value.e)
            assert np.array_equal(s.value.c, p.value.c)

    def test_parallel_error_capture(self):
        specs = _grid(3) + [ScenarioSpec(_params(), Prices(2.0, 1.0),
                                         scheme="bogus")]
        results = ServingEngine(max_workers=2, warm_start=False,
                                use_guard=False).serve_batch(specs)
        assert sum(r.ok for r in results) == 3
        assert not results[-1].ok


class TestPersistence:
    def test_engine_survives_restart_via_disk(self, tmp_path):
        specs = _grid(4)
        first = ServingEngine(max_workers=0, cache_dir=tmp_path)
        originals = first.serve_batch(specs)
        fresh = ServingEngine(max_workers=0, cache_dir=tmp_path)
        reloaded = fresh.serve_batch(specs)
        assert fresh.stats.disk_hits == 4
        assert fresh.stats.misses == 0
        assert {r.source for r in reloaded} == {"disk"}
        for orig, back in zip(originals, reloaded):
            np.testing.assert_allclose(back.value.e, orig.value.e,
                                       rtol=1e-12)

    def test_shared_cache_between_engines(self):
        cache = ScenarioCache()
        a = ServingEngine(cache=cache, max_workers=0)
        b = ServingEngine(cache=cache, max_workers=0)
        spec = _grid(1)[0]
        a.serve(spec)
        assert b.serve(spec).source == "memory"
        assert cache.stats.hits == 1

    def test_cache_and_cache_dir_are_exclusive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ServingEngine(cache=ScenarioCache(), cache_dir=tmp_path)


class TestKeying:
    def test_key_for_is_stable_and_quantized(self):
        engine = ServingEngine()
        a = ScenarioSpec(_params(), Prices(2.0, 1.0))
        b = ScenarioSpec(_params(), Prices(2.0 + 1e-13, 1.0))
        assert engine.key_for(a) == engine.key_for(b)

    def test_sub_quantum_queries_share_cache_entries(self):
        engine = ServingEngine(max_workers=0)
        a = ScenarioSpec(_params(), Prices(2.0, 1.0))
        b = ScenarioSpec(_params(), Prices(2.0 + 1e-13, 1.0))
        engine.serve(a)
        assert engine.serve(b).source == "memory"
