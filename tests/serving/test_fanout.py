"""Fan-out planning and zero-copy shared-memory budget transport."""

import json

import numpy as np
import pytest

from repro.core import GameParameters, Prices
from repro.serving import ScenarioSpec, ServingEngine
from repro.serving.fanout import (MIN_SECONDS_PER_WORKER,
                                  SharedBudgetBlock, plan_fanout,
                                  read_budgets)
from repro.telemetry import telemetry_session


class TestPlanFanout:
    def test_no_misses(self):
        plan = plan_fanout(0, n=8, max_workers=8,
                           bench_path="/nonexistent")
        assert plan.workers == 0
        assert plan.inline

    def test_small_batch_goes_inline(self):
        # A handful of cheap solves never pays pool startup.
        plan = plan_fanout(3, n=8, max_workers=8,
                           bench_path="/nonexistent")
        assert plan.inline

    def test_large_batch_fans_out_capped_at_max_workers(self):
        plan = plan_fanout(500, n=8, max_workers=4,
                           bench_path="/nonexistent")
        assert plan.workers == 4
        assert plan.chunk_size >= 1

    def test_workers_never_exceed_misses(self):
        plan = plan_fanout(2, n=8, max_workers=16,
                           bench_path="/nonexistent")
        assert plan.workers <= 2

    def test_chunk_override_forwarded(self):
        plan = plan_fanout(500, n=8, max_workers=4,
                           bench_path="/nonexistent", chunk_size=7)
        assert plan.chunk_size == 7

    def test_calibrates_from_bench_report(self, tmp_path):
        # A bench trajectory reporting very slow solves should produce
        # more workers than the default estimate would at equal misses.
        slow = {
            "cases": [{"solver": "connected", "kernel": "vectorized",
                       "n": 8, "median_s": 1.0, "p95_s": 1.1,
                       "repeats": 3, "converged": True,
                       "iterations": 10, "max_iter": 3000,
                       "capped": False, "counters": {}}],
            "speedups": {}, "notes": [], "env": {},
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(slow))
        calibrated = plan_fanout(4, n=8, max_workers=8, bench_path=path)
        default = plan_fanout(4, n=8, max_workers=8,
                              bench_path="/nonexistent")
        assert calibrated.workers == 4
        assert default.inline
        assert "bench connected/vectorized/n=8" in calibrated.reason

    def test_unreadable_report_falls_back(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        plan = plan_fanout(100, n=8, max_workers=4, bench_path=path)
        assert plan.workers >= 1
        assert "default" in plan.reason

    def test_work_threshold_respected(self):
        # 100 misses at the default 0.03s estimate = 3s of work; the
        # planner must not spawn workers that get < 0.25s each.
        plan = plan_fanout(100, n=8, max_workers=64,
                           bench_path="/nonexistent")
        est_total = 100 * 0.03
        assert plan.workers <= max(1, int(est_total /
                                          MIN_SECONDS_PER_WORKER))


class TestSharedBudgetBlock:
    def test_round_trip(self):
        vecs = [np.array([1.5, 2.5, 3.5]), np.array([7.0]),
                np.arange(5, dtype=float)]
        with SharedBudgetBlock(vecs) as block:
            assert block.nbytes == 9 * 8
            for vec, handle in zip(vecs, block.handles):
                got = read_budgets(block.name, handle)
                assert got == tuple(vec.tolist())

    def test_close_is_idempotent(self):
        block = SharedBudgetBlock([np.array([1.0, 2.0])])
        block.close()
        block.close()  # second close must not raise

    def test_telemetry_counter(self):
        with telemetry_session() as tel:
            with SharedBudgetBlock([np.array([1.0, 2.0, 3.0])]):
                pass
        snap = tel.metrics.snapshot()
        value = snap["serving_shared_memory_bytes_total"][
            "values"][0]["value"]
        assert value == 3 * 8


class TestEngineSharedMemoryPath:
    def _specs(self, count=48, n=12):
        params = GameParameters(
            reward=1000.0, fork_rate=0.2, h=0.8,
            budgets=[150.0 + 5.0 * j for j in range(n)])
        return [ScenarioSpec(params=params,
                             prices=Prices(2.0, round(0.5 + 0.02 * k, 9)))
                for k in range(count)]

    @pytest.mark.parametrize("use_shared_memory", [True, False])
    def test_parallel_matches_serial(self, use_shared_memory):
        specs = self._specs()
        serial = ServingEngine(warm_start=False, use_guard=False,
                               batch_mode="none", max_workers=0)
        parallel = ServingEngine(warm_start=False, use_guard=False,
                                 batch_mode="none", max_workers=2,
                                 use_shared_memory=use_shared_memory,
                                 bench_path="/nonexistent")
        serial_results = serial.serve_batch(specs)
        parallel_results = parallel.serve_batch(specs)
        for s, p in zip(serial_results, parallel_results):
            assert s.ok and p.ok
            np.testing.assert_array_equal(np.asarray(s.value.e),
                                          np.asarray(p.value.e))
            np.testing.assert_array_equal(np.asarray(s.value.c),
                                          np.asarray(p.value.c))

    def test_shared_memory_bytes_counted(self):
        specs = self._specs()
        engine = ServingEngine(warm_start=False, use_guard=False,
                               batch_mode="none", max_workers=2,
                               bench_path="/nonexistent")
        with telemetry_session() as tel:
            results = engine.serve_batch(specs)
        assert all(r.ok for r in results)
        snap = tel.metrics.snapshot()
        assert snap["serving_shared_memory_bytes_total"][
            "values"][0]["value"] == len(specs) * 12 * 8
        assert snap["serving_fanout_workers"][
            "values"][0]["value"] == 2
