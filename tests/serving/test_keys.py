"""Scenario keys: quantized, canonical, hash-stable."""

import numpy as np
import pytest

from repro.core import EdgeMode, Prices, homogeneous
from repro.serving import (DEFAULT_QUANTUM, ScenarioSpec, family_key,
                           feature_vector, quantize, scenario_key)


def _params(**overrides):
    defaults = dict(reward=1500.0, fork_rate=0.2, h=0.8)
    defaults.update(overrides)
    return homogeneous(5, 200.0, **defaults)


class TestQuantize:
    def test_lattice(self):
        assert quantize(1.0, 0.5) == 2
        assert quantize(0.74, 0.5) == 1
        assert quantize(0.76, 0.5) == 2

    def test_default_quantum_resolves_solver_scale_differences(self):
        assert quantize(1.0) != quantize(1.0 + 1e-6)
        assert quantize(1.0) == quantize(1.0 + 1e-12)

    def test_nonpositive_quantum_rejected(self):
        with pytest.raises(ValueError):
            quantize(1.0, 0.0)
        with pytest.raises(ValueError):
            quantize(1.0, -1e-9)


class TestScenarioKey:
    def test_deterministic_and_readable(self):
        spec = ScenarioSpec(_params(), Prices(2.0, 1.0))
        key = scenario_key(spec)
        assert key == scenario_key(spec)
        kind, mode, digest = key.split(":")
        assert kind == "miner"
        assert mode == EdgeMode.CONNECTED.value
        assert len(digest) == 32

    def test_kind_property(self):
        assert ScenarioSpec(_params(), Prices(2.0, 1.0)).kind == "miner"
        assert ScenarioSpec(_params()).kind == "stackelberg"
        assert scenario_key(ScenarioSpec(_params())).startswith(
            "stackelberg:")

    def test_sub_quantum_noise_collides_on_purpose(self):
        a = ScenarioSpec(_params(), Prices(2.0, 1.0))
        b = ScenarioSpec(_params(), Prices(2.0 + 1e-13, 1.0))
        assert scenario_key(a) == scenario_key(b)

    def test_super_quantum_difference_separates(self):
        a = ScenarioSpec(_params(), Prices(2.0, 1.0))
        b = ScenarioSpec(_params(), Prices(2.0 + 1e-6, 1.0))
        assert scenario_key(a) != scenario_key(b)

    def test_every_field_enters_the_digest(self):
        base = ScenarioSpec(_params(), Prices(2.0, 1.0))
        variants = [
            ScenarioSpec(_params(reward=1501.0), Prices(2.0, 1.0)),
            ScenarioSpec(_params(fork_rate=0.21), Prices(2.0, 1.0)),
            ScenarioSpec(_params(), Prices(2.0, 1.1)),
            ScenarioSpec(_params(), Prices(2.0, 1.0), scheme="best-response"),
            ScenarioSpec(_params(), Prices(2.0, 1.0), tol=1e-6),
            ScenarioSpec(_params()),
        ]
        keys = {scenario_key(s) for s in variants}
        assert scenario_key(base) not in keys
        assert len(keys) == len(variants)

    def test_label_is_not_part_of_the_key(self):
        a = ScenarioSpec(_params(), Prices(2.0, 1.0), label="fig4")
        b = ScenarioSpec(_params(), Prices(2.0, 1.0), label="fig5")
        assert scenario_key(a) == scenario_key(b)

    def test_quantum_is_part_of_the_key(self):
        spec = ScenarioSpec(_params(), Prices(2.0, 1.0))
        assert scenario_key(spec, quantum=DEFAULT_QUANTUM) != \
            scenario_key(spec, quantum=1e-6)


class TestFamilyAndFeatures:
    def test_family_groups_comparable_scenarios(self):
        a = ScenarioSpec(_params(), Prices(2.0, 1.0))
        b = ScenarioSpec(_params(reward=999.0), Prices(3.0, 0.5))
        assert family_key(a) == family_key(b)
        assert family_key(a) != family_key(ScenarioSpec(_params()))

    def test_feature_vector_layout(self):
        spec = ScenarioSpec(_params(), Prices(2.0, 1.0))
        vec = feature_vector(spec)
        assert vec.shape == (8 + 5,)
        assert vec[0] == 1500.0  # reward
        assert vec[6] == 2.0 and vec[7] == 1.0  # prices
        assert np.all(vec[8:] == 200.0)  # budgets

    def test_stackelberg_features_zero_the_price_slots(self):
        vec = feature_vector(ScenarioSpec(_params()))
        assert vec[6] == 0.0 and vec[7] == 0.0
