"""Determinism: parallel serving and fault-injected pipelines replay
bit-identically.

The parallel path ships scenario solves to worker processes; the serial
path runs them inline. With warm-start chaining disabled (serial chains
*within* a batch while the parallel path only sees the pre-batch index)
the two must return the same equilibrium per scenario key. Fault
injection is seeded, so a whole chaos pipeline replays exactly too.
"""

import numpy as np
import pytest

from repro.core import (EdgeMode, GameParameters, Prices, homogeneous,
                        solve_connected_equilibrium)
from repro.resilience import (FaultPlan, TransientFaults,
                              run_resilient_pipeline)
from repro.serving import ScenarioSpec, ServingEngine


def _price_grid_specs():
    """A miner-stage price sweep with deliberate duplicate keys."""
    params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)
    specs = [ScenarioSpec(params=params, prices=Prices(p_e=2.0, p_c=p_c))
             for p_c in np.linspace(0.5, 1.3, 6)]
    # Duplicates of the first and last scenarios: dedup answers these.
    specs.append(ScenarioSpec(params=params,
                              prices=Prices(p_e=2.0, p_c=0.5)))
    specs.append(ScenarioSpec(params=params,
                              prices=Prices(p_e=2.0, p_c=1.3)))
    return specs


def _standalone_specs():
    params = homogeneous(5, 1000.0, reward=1000.0, fork_rate=0.2,
                         mode=EdgeMode.STANDALONE, e_max=80.0)
    return [ScenarioSpec(params=params,
                         prices=Prices(p_e=2.0, p_c=p_c))
            for p_c in (0.8, 1.0, 1.2)]


def _by_key(results):
    return {r.key: r for r in results}


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("make_specs", [_price_grid_specs,
                                            _standalone_specs])
    def test_results_identical_per_key(self, make_specs):
        specs = make_specs()
        serial = ServingEngine(warm_start=False, max_workers=1)
        parallel = ServingEngine(warm_start=False, max_workers=2)

        serial_by_key = _by_key(serial.serve_batch(specs))
        parallel_by_key = _by_key(parallel.serve_batch(specs))

        assert set(serial_by_key) == set(parallel_by_key)
        for key, s in serial_by_key.items():
            p = parallel_by_key[key]
            assert s.ok and p.ok
            np.testing.assert_array_equal(np.asarray(s.value.e),
                                          np.asarray(p.value.e))
            np.testing.assert_array_equal(np.asarray(s.value.c),
                                          np.asarray(p.value.c))

    def test_duplicates_answered_identically(self):
        specs = _price_grid_specs()
        engine = ServingEngine(warm_start=False, max_workers=2)
        results = engine.serve_batch(specs)
        assert len(results) == len(specs)
        # The appended duplicates carry the same keys as the originals
        # and the identical equilibrium object content.
        assert results[-2].key == results[0].key
        assert results[-1].key == results[5].key
        assert results[-2].source == "dedup"
        np.testing.assert_array_equal(np.asarray(results[-2].value.e),
                                      np.asarray(results[0].value.e))

    def test_order_preserved(self):
        specs = _price_grid_specs()
        engine = ServingEngine(warm_start=False, max_workers=2)
        results = engine.serve_batch(specs)
        for spec, res in zip(specs, results):
            assert res.spec.prices == spec.prices

    def test_repeat_batch_is_all_cache_hits(self):
        specs = _price_grid_specs()
        engine = ServingEngine(warm_start=False, max_workers=2)
        first = engine.serve_batch(specs)
        second = engine.serve_batch(specs)
        assert all(r.source == "memory" for r in second[:6])
        for a, b in zip(first, second):
            np.testing.assert_array_equal(np.asarray(a.value.e),
                                          np.asarray(b.value.e))


class TestMultiscenarioBatchMode:
    """``batch_mode="multiscenario"`` is a pure speedup: bit-identical
    results, answered by the batched kernel where eligible."""

    def _vectorized_specs(self, n_scen=12, n=24):
        params = GameParameters(
            reward=1200.0, fork_rate=0.2, h=0.8,
            budgets=[100.0 + 6.0 * j for j in range(n)])
        return [ScenarioSpec(params=params,
                             prices=Prices(2.0, round(0.6 + 0.05 * k, 9)),
                             kernel="vectorized")
                for k in range(n_scen)]

    def test_identical_to_batching_disabled(self):
        specs = self._vectorized_specs()
        batched = ServingEngine(warm_start=False, use_guard=False,
                                batch_mode="multiscenario")
        plain = ServingEngine(warm_start=False, use_guard=False,
                              batch_mode="none")
        batched_by_key = _by_key(batched.serve_batch(specs))
        plain_by_key = _by_key(plain.serve_batch(specs))
        assert set(batched_by_key) == set(plain_by_key)
        for key, b in batched_by_key.items():
            p = plain_by_key[key]
            assert b.ok and p.ok
            np.testing.assert_array_equal(np.asarray(b.value.e),
                                          np.asarray(p.value.e))
            np.testing.assert_array_equal(np.asarray(b.value.c),
                                          np.asarray(p.value.c))

    def test_batched_solver_label(self):
        specs = self._vectorized_specs()
        engine = ServingEngine(warm_start=False, use_guard=False,
                               batch_mode="multiscenario")
        results = engine.serve_batch(specs)
        assert all(r.ok for r in results)
        assert {r.solver for r in results} == {"nep-multiscenario"}

    def test_small_n_bypasses_batching(self):
        # kernel="auto" at n=5 resolves to the running sweep, which
        # the batch cannot certify — the per-scenario path answers.
        specs = _price_grid_specs()
        engine = ServingEngine(warm_start=False, use_guard=False,
                               batch_mode="multiscenario")
        results = engine.serve_batch(specs)
        assert all(r.ok for r in results)
        assert "nep-multiscenario" not in {r.solver for r in results}

    def test_large_n_bypasses_batching(self):
        # Past the batching crossover a solo vectorized solve is
        # already efficient; the engine must decline to batch there.
        from repro.kernels.multiscenario import MULTISCENARIO_MAX_N

        specs = self._vectorized_specs(n_scen=3,
                                       n=MULTISCENARIO_MAX_N + 1)
        engine = ServingEngine(warm_start=False, use_guard=False,
                               batch_mode="multiscenario")
        results = engine.serve_batch(specs)
        assert all(r.ok for r in results)
        assert "nep-multiscenario" not in {r.solver for r in results}

    def test_identical_to_direct_solve(self):
        specs = self._vectorized_specs(n_scen=6)
        engine = ServingEngine(warm_start=False, use_guard=False,
                               batch_mode="multiscenario")
        for spec, res in zip(specs, engine.serve_batch(specs)):
            direct = solve_connected_equilibrium(
                spec.params, spec.prices, tol=spec.tol,
                kernel="vectorized")
            np.testing.assert_array_equal(np.asarray(res.value.e),
                                          direct.e)
            np.testing.assert_array_equal(np.asarray(res.value.c),
                                          direct.c)


class TestFaultedPipelineDeterminism:
    PLAN = FaultPlan(faults=(TransientFaults(rate=0.35, target="both"),),
                     seed=7)

    def _run(self):
        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        return run_resilient_pipeline(params, self.PLAN, n_rounds=12,
                                      seed=3)

    def test_two_runs_bit_identical(self):
        a = self._run()
        b = self._run()
        np.testing.assert_array_equal(a.equilibrium.e, b.equilibrium.e)
        np.testing.assert_array_equal(a.equilibrium.c, b.equilibrium.c)
        assert a.prices == b.prices
        assert a.report.retries == b.report.retries
        assert a.report.failed_requests == b.report.failed_requests
        assert [str(e) for e in a.report.faults] == \
            [str(e) for e in b.report.faults]
        assert a.esp_revenue == b.esp_revenue
        assert a.csp_revenue == b.csp_revenue
        assert [r.winner for r in a.rounds] == \
            [r.winner for r in b.rounds]

    def test_faults_actually_fired(self):
        # The determinism claim is vacuous unless the plan bites.
        outcome = self._run()
        assert len(outcome.report.faults) > 0

    def test_serving_grid_deterministic_alongside_faulted_pipeline(self):
        # Faulted pipeline runs interleaved with a parallel serve must
        # not perturb the served equilibria (no hidden global RNG).
        specs = _price_grid_specs()
        baseline = _by_key(
            ServingEngine(warm_start=False).serve_batch(specs))
        self._run()
        interleaved = _by_key(ServingEngine(
            warm_start=False, max_workers=2).serve_batch(specs))
        for key, base in baseline.items():
            np.testing.assert_array_equal(
                np.asarray(base.value.e),
                np.asarray(interleaved[key].value.e))


class TestServedEquilibriumMatchesDirect:
    def test_parallel_result_equals_direct_solve(self):
        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        prices = Prices(p_e=2.0, p_c=1.0)
        spec = ScenarioSpec(params=params, prices=prices)
        direct = solve_connected_equilibrium(params, prices,
                                             kernel=spec.kernel)
        engine = ServingEngine(warm_start=False, use_guard=False,
                               max_workers=2)
        res = engine.serve_batch([spec])[0]
        np.testing.assert_array_equal(np.asarray(res.value.e), direct.e)
        np.testing.assert_array_equal(np.asarray(res.value.c), direct.c)


class TestFaultedPipelineWithTelemetry:
    def test_faulted_run_records_metrics_and_events(self, tmp_path):
        from repro.telemetry import telemetry_session

        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        plan = FaultPlan(
            faults=(TransientFaults(rate=0.4, target="both"),), seed=7)
        events_path = tmp_path / "chaos_events.jsonl"
        with telemetry_session(event_path=events_path) as tel:
            outcome = run_resilient_pipeline(params, plan, n_rounds=10,
                                             seed=3)
        snap = tel.metrics.snapshot()
        assert snap["faults_injected_total"]["values"][0]["value"] > 0
        assert snap["dispatch_total"]["values"][0]["value"] > 0
        kinds = {e["kind"] for e in tel.events.tail()}
        assert "fault.injected" in kinds
        assert events_path.read_text().strip()
        assert len(outcome.report.faults) > 0

    def test_telemetry_does_not_perturb_faulted_run(self):
        from repro.telemetry import telemetry_session

        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        plan = FaultPlan(
            faults=(TransientFaults(rate=0.4, target="both"),), seed=7)
        dark = run_resilient_pipeline(params, plan, n_rounds=10, seed=3)
        with telemetry_session():
            lit = run_resilient_pipeline(params, plan, n_rounds=10,
                                         seed=3)
        np.testing.assert_array_equal(dark.equilibrium.e,
                                      lit.equilibrium.e)
        assert dark.report.retries == lit.report.retries
        assert [str(e) for e in dark.report.faults] == \
            [str(e) for e in lit.report.faults]
        assert dark.esp_revenue == lit.esp_revenue
