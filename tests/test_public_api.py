"""Public API surface: everything advertised imports and works together.

Doubles as the README quickstart's regression test.
"""

import numpy as np
import pytest

import repro
from repro import (EdgeMode, GameParameters, Prices, homogeneous,
                   solve_connected_equilibrium, solve_stackelberg,
                   verify_miner_equilibrium)


class TestTopLevelExports:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestQuickstart:
    def test_readme_quickstart(self):
        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)
        eq = solve_connected_equilibrium(params, Prices(p_e=2.0, p_c=1.0))
        assert eq.converged
        assert "equilibrium" in eq.summary()
        assert verify_miner_equilibrium(eq)

    def test_end_to_end_stackelberg(self):
        params = homogeneous(5, 100.0, reward=1000.0, fork_rate=0.2, h=0.8,
                             edge_cost=0.2, cloud_cost=0.1)
        se = solve_stackelberg(params)
        assert se.prices.p_e > se.prices.p_c
        # Miner spending never exceeds budgets at equilibrium prices.
        assert np.all(se.miners.spending <= 100.0 * (1 + 1e-9))

    def test_exceptions_are_catchable_via_base(self):
        from repro import ReproError
        with pytest.raises(ReproError):
            homogeneous(1, 100.0, reward=1.0, fork_rate=0.1)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.blockchain
        import repro.game
        import repro.learning
        import repro.offloading
        import repro.population
        assert repro.blockchain.Block.genesis().height == 0
