"""Block tree, longest-chain rule, fork accounting."""

import pytest

from repro.blockchain import Block, Blockchain, UnknownParentError


@pytest.fixture
def chain():
    return Blockchain()


class TestAppend:
    def test_add_extends_tip(self, chain):
        b = chain.tip.child(0, "edge", 1.0)
        assert chain.add(b)
        assert chain.tip is b
        assert chain.height == 1

    def test_duplicate_add_is_noop(self, chain):
        b = chain.tip.child(0, "edge", 1.0)
        chain.add(b)
        assert not chain.add(b)
        assert len(chain) == 2  # genesis + b

    def test_unknown_parent_rejected(self, chain):
        stranger = Block.genesis().child(0, "edge", 1.0)
        orphan_child = stranger.child(1, "edge", 2.0)
        with pytest.raises(UnknownParentError):
            chain.add(orphan_child)

    def test_contains(self, chain):
        b = chain.tip.child(0, "edge", 1.0)
        chain.add(b)
        assert b.hash in chain
        assert "f" * 64 not in chain


class TestForkResolution:
    def test_first_received_wins_ties(self, chain):
        g = chain.tip
        first = g.child(0, "edge", 1.0)
        second = g.child(1, "cloud", 1.1)
        chain.add(first)
        chain.add(second)
        assert chain.tip is first  # same height: first received wins

    def test_longer_fork_overtakes(self, chain):
        g = chain.tip
        a1 = g.child(0, "edge", 1.0)
        chain.add(a1)
        b1 = g.child(1, "cloud", 1.1)
        chain.add(b1)
        b2 = b1.child(1, "cloud", 2.0)
        assert chain.add(b2)
        assert chain.tip is b2
        assert not chain.is_canonical(a1.hash)

    def test_canonical_chain_order(self, chain):
        tip = chain.tip
        blocks = []
        for i in range(4):
            tip = tip.child(i % 2, "edge", float(i + 1))
            chain.add(tip)
            blocks.append(tip)
        canonical = chain.canonical_chain()
        assert canonical[0].height == 0
        assert [b.hash for b in canonical[1:]] == [b.hash for b in blocks]

    def test_winners_excludes_genesis(self, chain):
        b = chain.tip.child(3, "edge", 1.0)
        chain.add(b)
        assert chain.winners() == [3]


class TestStats:
    def test_orphan_rate(self, chain):
        g = chain.tip
        a = g.child(0, "edge", 1.0)
        b = g.child(1, "cloud", 1.1)
        chain.add(a)
        chain.add(b)
        c = a.child(0, "edge", 2.0)
        chain.add(c)
        stats = chain.stats()
        assert stats.total_blocks == 3
        assert stats.orphans == 1
        assert stats.fork_events == 1
        assert stats.orphan_rate == pytest.approx(1 / 3)

    def test_empty_chain_stats(self, chain):
        stats = chain.stats()
        assert stats.total_blocks == 0
        assert stats.orphan_rate == 0.0

    def test_validate(self, chain):
        tip = chain.tip
        for i in range(5):
            tip = tip.child(0, "edge", float(i + 1))
            chain.add(tip)
        assert chain.validate()


class TestAncestryUtilities:
    def test_common_ancestor_of_fork(self, chain):
        g = chain.tip
        a1 = g.child(0, "edge", 1.0)
        chain.add(a1)
        a2 = a1.child(0, "edge", 2.0)
        chain.add(a2)
        b2 = a1.child(1, "cloud", 2.1)
        chain.add(b2)
        lca = chain.common_ancestor(a2.hash, b2.hash)
        assert lca.hash == a1.hash

    def test_ancestor_of_itself(self, chain):
        b = chain.tip.child(0, "edge", 1.0)
        chain.add(b)
        assert chain.common_ancestor(b.hash, b.hash).hash == b.hash

    def test_reorg_depth_zero_on_extension(self, chain):
        a = chain.tip.child(0, "edge", 1.0)
        chain.add(a)
        old_tip = chain.tip.hash
        b = chain.tip.child(0, "edge", 2.0)
        chain.add(b)
        assert chain.reorg_depth(old_tip) == 0

    def test_reorg_depth_counts_abandoned_blocks(self, chain):
        g = chain.tip
        a1 = g.child(0, "edge", 1.0)
        chain.add(a1)
        a2 = a1.child(0, "edge", 2.0)
        chain.add(a2)
        old_tip = chain.tip.hash
        # Competing branch from genesis overtakes with 3 blocks.
        b = g
        for t in (1.1, 2.1, 3.1):
            b = b.child(1, "cloud", t)
            chain.add(b)
        assert chain.tip.hash == b.hash
        assert chain.reorg_depth(old_tip) == 2

    def test_unknown_block_raises(self, chain):
        import pytest as _pytest
        with _pytest.raises(Exception):
            chain.common_ancestor("f" * 64, chain.tip.hash)
