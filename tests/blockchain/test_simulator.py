"""Mining simulators vs the Section-III winning-probability model.

These are statistical tests with fixed seeds and tolerances sized to the
sampling error of the configured round counts.
"""

import numpy as np
import pytest

from repro.blockchain import (Difficulty, EventDrivenSimulator, ForkModel,
                              MinerNode, PropagationModel, RoundSimulator)
from repro.core.winning import w_connected, w_full
from repro.exceptions import ConfigurationError

E = np.array([10.0, 20.0, 5.0, 15.0, 10.0])
C = np.array([40.0, 10.0, 30.0, 20.0, 25.0])
BETA = 0.25
ROUNDS = 60000


class TestRoundSimulator:
    def test_matches_w_full(self):
        sim = RoundSimulator(E, C, BETA, seed=42)
        tally = sim.run(ROUNDS)
        model = w_full(E, C, BETA)
        assert np.max(np.abs(tally.win_rates - model)) < 0.01

    def test_win_rates_sum_to_one(self):
        sim = RoundSimulator(E, C, BETA, seed=1)
        tally = sim.run(5000)
        assert float(tally.win_rates.sum()) == pytest.approx(1.0)

    def test_marginal_transfer_matches_eq9(self):
        h = 0.7
        sim = RoundSimulator(E, C, BETA, h=h, seed=7)
        tally = sim.run(ROUNDS, transfer="marginal", measured=0)
        model = w_connected(E, C, BETA, h)
        assert abs(tally.win_rates[0] - model[0]) < 0.01

    def test_orphans_only_from_cloud_blocks(self):
        # All-edge network: no cloud exposure, no orphans.
        sim = RoundSimulator(E, np.zeros_like(E), BETA, seed=3)
        tally = sim.run(5000)
        assert tally.orphaned_cloud_blocks == 0

    def test_zero_beta_no_orphans(self):
        sim = RoundSimulator(E, C, 0.0, seed=4)
        tally = sim.run(5000)
        assert tally.orphaned_cloud_blocks == 0

    def test_edge_advantage_grows_with_beta(self):
        """A miner with mostly edge power gains from a higher fork rate."""
        e = np.array([30.0, 0.0])
        c = np.array([0.0, 30.0])
        low = RoundSimulator(e, c, 0.05, seed=5).run(ROUNDS).win_rates[0]
        high = RoundSimulator(e, c, 0.45, seed=5).run(ROUNDS).win_rates[0]
        assert high > low

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RoundSimulator(E, C[:-1], BETA)
        with pytest.raises(ConfigurationError):
            RoundSimulator(E, C, 1.0)
        with pytest.raises(ConfigurationError):
            RoundSimulator(np.zeros(2), np.zeros(2), 0.1)
        sim = RoundSimulator(E, C, BETA)
        with pytest.raises(ConfigurationError):
            sim.run(0)
        with pytest.raises(ConfigurationError):
            sim.run(10, transfer="sideways")
        with pytest.raises(ConfigurationError):
            sim.run(10, transfer="marginal")  # missing measured index

    def test_seed_reproducibility(self):
        a = RoundSimulator(E, C, BETA, seed=9).run(2000)
        b = RoundSimulator(E, C, BETA, seed=9).run(2000)
        assert np.array_equal(a.wins, b.wins)


class TestEventDrivenSimulator:
    def _build(self, seed=3, cloud_delay=None, blocks=4000):
        fork = ForkModel()
        d = cloud_delay if cloud_delay is not None else \
            fork.delay_for_fork_rate(BETA)
        nodes = [MinerNode(i, E[i], C[i]) for i in range(5)]
        sim = EventDrivenSimulator(
            nodes, Difficulty(unit_solve_time=float((E + C).sum())),
            PropagationModel(cloud_delay=d), seed=seed)
        return sim.run(blocks)

    def test_chain_is_valid(self):
        res = self._build(blocks=1000)
        assert res.chain.validate()
        assert res.chain.height >= 1000

    def test_zero_delay_no_orphans(self):
        res = self._build(cloud_delay=0.0, blocks=1500)
        assert res.stats.orphans == 0

    def test_orphan_rate_increases_with_delay(self):
        low = self._build(cloud_delay=1.0, blocks=4000).stats.orphan_rate
        high = self._build(cloud_delay=30.0, blocks=4000).stats.orphan_rate
        assert high > low

    def test_win_shares_match_model_at_emergent_fork_rate(self):
        """The event-driven mechanism reproduces Eq. (6) evaluated at its
        own *emergent* fork rate: the per-cloud-block conflict probability
        1 - exp(-rate_edge * D_avg)."""
        res = self._build(blocks=8000)
        shares = res.win_shares
        fork = ForkModel()
        d = fork.delay_for_fork_rate(BETA)
        rate_edge = float(E.sum()) / float((E + C).sum())  # per unit time
        beta_emergent = 1.0 - np.exp(-rate_edge * d)
        model = w_full(E, C, beta_emergent)
        assert np.max(np.abs(shares - model)) < 0.02

    def test_rewards_credited(self):
        res = self._build(blocks=500)
        total_wins = sum(n.blocks_won for n in res.nodes)
        assert total_wins >= 500
        for n in res.nodes:
            assert n.reward_earned == pytest.approx(n.blocks_won * 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EventDrivenSimulator([], Difficulty(1.0),
                                 PropagationModel(1.0))
        nodes = [MinerNode(0, 1.0, 1.0)]
        with pytest.raises(ConfigurationError):
            EventDrivenSimulator(nodes, Difficulty(1.0),
                                 PropagationModel(1.0), reward=0.0)
        sim = EventDrivenSimulator(nodes, Difficulty(1.0),
                                   PropagationModel(1.0))
        with pytest.raises(ConfigurationError):
            sim.run(0)


class TestMinerNode:
    def test_ledger(self):
        n = MinerNode(0, 1.0, 2.0)
        n.credit(10.0)
        n.credit(10.0)
        n.orphan()
        assert n.blocks_won == 2
        assert n.blocks_orphaned == 1
        assert n.reward_earned == 20.0
        assert n.empirical_win_rate() == pytest.approx(2 / 3)
        assert n.total_units == 3.0

    def test_empty_ledger_rate(self):
        assert MinerNode(0, 1.0, 1.0).empirical_win_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MinerNode(-1, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            MinerNode(0, -1.0, 1.0)


class TestVectorizedPath:
    def test_vectorized_matches_loop_statistics(self):
        model = w_full(E, C, BETA)
        vec = RoundSimulator(E, C, BETA, seed=21).run(100000)
        loop = RoundSimulator(E, C, BETA, seed=22).run(30000,
                                                       vectorized=False)
        assert np.max(np.abs(vec.win_rates - model)) < 0.01
        assert np.max(np.abs(loop.win_rates - model)) < 0.02
        assert np.max(np.abs(vec.win_rates - loop.win_rates)) < 0.02

    def test_vectorized_marginal_matches_eq9(self):
        h = 0.6
        model = w_connected(E, C, BETA, h)
        tally = RoundSimulator(E, C, BETA, h=h, seed=23).run(
            200000, transfer="marginal", measured=2)
        assert abs(tally.win_rates[2] - model[2]) < 0.006

    def test_vectorized_much_faster(self):
        import time
        sim_v = RoundSimulator(E, C, BETA, seed=24)
        sim_l = RoundSimulator(E, C, BETA, seed=24)
        t0 = time.perf_counter()
        sim_v.run(50000)
        t_vec = time.perf_counter() - t0
        t0 = time.perf_counter()
        sim_l.run(5000, vectorized=False)
        t_loop_5k = time.perf_counter() - t0
        # 50k vectorized rounds beat 5k looped rounds.
        assert t_vec < t_loop_5k * 2

    def test_orphan_counts_consistent(self):
        vec = RoundSimulator(E, C, BETA, seed=25).run(100000)
        rate_vec = vec.orphaned_cloud_blocks / 100000
        loop = RoundSimulator(E, C, BETA, seed=26).run(20000,
                                                       vectorized=False)
        rate_loop = loop.orphaned_cloud_blocks / 20000
        assert rate_vec == pytest.approx(rate_loop, abs=0.01)
