"""Fork-rate model (Fig. 2)."""

import numpy as np
import pytest

from repro.blockchain import BITCOIN_COLLISION_RATE, ForkModel
from repro.exceptions import ConfigurationError


class TestForkModel:
    def test_cdf_properties(self):
        m = ForkModel()
        delays = np.linspace(0, 60, 50)
        cdf = m.fork_rate(delays)
        assert cdf[0] == 0.0
        assert np.all(np.diff(cdf) > 0)
        assert np.all(cdf < 1.0)

    def test_pdf_integrates_to_cdf(self):
        m = ForkModel(collision_rate=0.1)
        t = np.linspace(0, 20, 20001)
        integral = np.trapezoid(m.pdf(t), t)
        assert integral == pytest.approx(float(m.fork_rate(20.0)),
                                         abs=1e-4)

    def test_inverse_roundtrip(self):
        m = ForkModel()
        for beta in (0.05, 0.2, 0.5, 0.9):
            d = m.delay_for_fork_rate(beta)
            assert float(m.fork_rate(d)) == pytest.approx(beta, rel=1e-10)

    def test_linear_approximation_small_delay(self):
        """The paper's 'almost linearly proportional' regime."""
        m = ForkModel()
        for d in (0.1, 0.5, 1.0):
            assert m.linearization_error(d) < 0.01 * BITCOIN_COLLISION_RATE \
                * d / BITCOIN_COLLISION_RATE + 0.005

    def test_linearization_error_grows(self):
        m = ForkModel()
        assert m.linearization_error(30.0) > m.linearization_error(1.0)

    def test_negative_delay_clamped(self):
        m = ForkModel()
        assert float(m.fork_rate(-5.0)) == 0.0

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            ForkModel(collision_rate=0.0)

    def test_invalid_beta_inverse(self):
        m = ForkModel()
        with pytest.raises(ConfigurationError):
            m.delay_for_fork_rate(1.0)

    def test_scalar_and_vector_forms(self):
        m = ForkModel()
        assert isinstance(m.fork_rate(3.0), float)
        assert m.fork_rate(np.array([3.0])).shape == (1,)
