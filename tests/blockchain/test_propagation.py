"""Propagation-delay model."""

import pytest

from repro.blockchain import PropagationModel
from repro.exceptions import ConfigurationError


class TestPropagationModel:
    def test_venue_delays(self):
        m = PropagationModel(cloud_delay=5.0)
        assert m.delay("edge") == 0.0
        assert m.delay("cloud") == 5.0

    def test_exposure_window(self):
        m = PropagationModel(cloud_delay=5.0, edge_delay=1.0)
        assert m.exposure_window("cloud") == 4.0
        assert m.exposure_window("edge") == 0.0

    def test_unknown_venue(self):
        m = PropagationModel(cloud_delay=5.0)
        with pytest.raises(ConfigurationError):
            m.delay("satellite")

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            PropagationModel(cloud_delay=-1.0)

    def test_edge_cannot_be_farther_than_cloud(self):
        with pytest.raises(ConfigurationError):
            PropagationModel(cloud_delay=1.0, edge_delay=2.0)
