"""Block and header primitives."""

import pytest

from repro.blockchain import GENESIS_PARENT, Block, BlockHeader


class TestBlockHeader:
    def test_digest_deterministic(self):
        h = BlockHeader(GENESIS_PARENT, 1, 0, "edge", 1.0)
        assert h.digest() == h.digest()

    def test_digest_sensitive_to_fields(self):
        base = BlockHeader(GENESIS_PARENT, 1, 0, "edge", 1.0)
        changed = BlockHeader(GENESIS_PARENT, 1, 1, "edge", 1.0)
        assert base.digest() != changed.digest()

    def test_invalid_venue(self):
        with pytest.raises(ValueError):
            BlockHeader(GENESIS_PARENT, 1, 0, "moon", 1.0)

    def test_negative_height(self):
        with pytest.raises(ValueError):
            BlockHeader(GENESIS_PARENT, -1, 0, "edge", 1.0)


class TestBlock:
    def test_genesis(self):
        g = Block.genesis()
        assert g.height == 0
        assert g.miner_id == -1
        assert g.header.parent_hash == GENESIS_PARENT

    def test_genesis_is_stable(self):
        assert Block.genesis().hash == Block.genesis().hash

    def test_child_links_correctly(self):
        g = Block.genesis()
        child = g.child(miner_id=2, venue="cloud", found_at=5.0)
        assert child.height == 1
        assert child.header.parent_hash == g.hash
        assert child.verify_link(g)

    def test_child_rejects_time_travel(self):
        g = Block.genesis()
        b = g.child(0, "edge", 10.0)
        with pytest.raises(ValueError):
            b.child(0, "edge", 5.0)

    def test_verify_link_rejects_wrong_parent(self):
        g = Block.genesis()
        a = g.child(0, "edge", 1.0)
        b = g.child(1, "edge", 2.0)
        orphan = a.child(0, "edge", 3.0)
        assert not orphan.verify_link(b)

    def test_hash_computed_at_construction(self):
        g = Block.genesis()
        b = g.child(0, "edge", 1.0)
        assert b.hash == b.header.digest()
