"""Simulated PoW: exponential race statistics."""

import numpy as np
import pytest

from repro.blockchain import Difficulty, PowOracle
from repro.exceptions import ConfigurationError


class TestDifficulty:
    def test_rate_inverse(self):
        d = Difficulty(unit_solve_time=20.0)
        assert d.unit_rate == pytest.approx(0.05)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            Difficulty(unit_solve_time=0.0)


class TestSolveTime:
    def test_mean_scales_inversely_with_units(self):
        oracle = PowOracle(Difficulty(10.0), seed=0)
        times_1 = [oracle.solve_time(1.0) for _ in range(4000)]
        times_5 = [oracle.solve_time(5.0) for _ in range(4000)]
        assert np.mean(times_1) == pytest.approx(10.0, rel=0.1)
        assert np.mean(times_5) == pytest.approx(2.0, rel=0.1)

    def test_zero_units_rejected(self):
        oracle = PowOracle(Difficulty(10.0))
        with pytest.raises(ConfigurationError):
            oracle.solve_time(0.0)


class TestRace:
    def test_winner_proportional_to_units(self):
        oracle = PowOracle(Difficulty(10.0), seed=1)
        pools = [1.0, 3.0]
        wins = np.zeros(2)
        for _ in range(20000):
            w, _ = oracle.race(pools)
            wins[w] += 1
        assert wins[1] / wins.sum() == pytest.approx(0.75, abs=0.02)

    def test_elapsed_time_mean(self):
        oracle = PowOracle(Difficulty(10.0), seed=2)
        times = [oracle.race([2.0, 3.0])[1] for _ in range(5000)]
        # Aggregate rate 5 units at 0.1/s => mean 2 s.
        assert np.mean(times) == pytest.approx(2.0, rel=0.1)

    def test_zero_pool_never_wins(self):
        oracle = PowOracle(Difficulty(10.0), seed=3)
        for _ in range(500):
            w, _ = oracle.race([0.0, 1.0])
            assert w == 1

    def test_empty_race_rejected(self):
        oracle = PowOracle(Difficulty(10.0))
        with pytest.raises(ConfigurationError):
            oracle.race([0.0, 0.0])

    def test_negative_pool_rejected(self):
        oracle = PowOracle(Difficulty(10.0))
        with pytest.raises(ConfigurationError):
            oracle.race([-1.0, 1.0])


class TestWindow:
    def test_probability_matches_exponential(self):
        oracle = PowOracle(Difficulty(10.0), seed=4)
        hits = sum(oracle.next_solution_within(2.0, 5.0)
                   for _ in range(20000))
        expected = 1.0 - np.exp(-2.0 * 0.1 * 5.0)
        assert hits / 20000 == pytest.approx(expected, abs=0.01)

    def test_degenerate_inputs(self):
        oracle = PowOracle(Difficulty(10.0))
        assert not oracle.next_solution_within(0.0, 5.0)
        assert not oracle.next_solution_within(2.0, 0.0)

    def test_seed_reproducibility(self):
        a = PowOracle(Difficulty(10.0), seed=7)
        b = PowOracle(Difficulty(10.0), seed=7)
        assert [a.solve_time(1.0) for _ in range(10)] == \
            [b.solve_time(1.0) for _ in range(10)]
