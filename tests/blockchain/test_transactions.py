"""Transactions, mempool packing, fee-market simulation."""

import numpy as np
import pytest

from repro.blockchain.transactions import (FeeSimulationResult, Mempool,
                                           Transaction, TxArrivalProcess,
                                           simulate_fee_revenue)
from repro.exceptions import ConfigurationError


def _tx(tx_id, fee, size):
    return Transaction(tx_id=tx_id, fee=fee, size=size)


class TestTransaction:
    def test_fee_rate(self):
        assert _tx(0, 10.0, 500.0).fee_rate == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _tx(0, -1.0, 500.0)
        with pytest.raises(ConfigurationError):
            _tx(0, 1.0, 0.0)


class TestMempool:
    def test_packs_by_fee_rate(self):
        pool = Mempool()
        pool.add(_tx(0, 1.0, 100.0))    # rate 0.01
        pool.add(_tx(1, 5.0, 100.0))    # rate 0.05
        pool.add(_tx(2, 2.0, 100.0))    # rate 0.02
        packed = pool.pack_block(200.0)
        assert [t.tx_id for t in packed] == [1, 2]
        assert len(pool) == 1

    def test_skips_oversized_keeps_them(self):
        pool = Mempool()
        pool.add(_tx(0, 50.0, 900.0))   # best rate but too big
        pool.add(_tx(1, 1.0, 100.0))
        packed = pool.pack_block(100.0)
        assert [t.tx_id for t in packed] == [1]
        assert len(pool) == 1           # the big one stays pooled

    def test_total_accounting(self):
        pool = Mempool()
        pool.add(_tx(0, 1.0, 100.0))
        pool.add(_tx(1, 2.0, 300.0))
        assert pool.total_fees == pytest.approx(3.0)
        assert pool.total_bytes == pytest.approx(400.0)

    def test_empty_pack(self):
        assert Mempool().pack_block(1000.0) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Mempool(lookahead=0)
        with pytest.raises(ConfigurationError):
            Mempool().pack_block(0.0)

    def test_fifo_tiebreak_stable(self):
        pool = Mempool()
        pool.add(_tx(0, 1.0, 100.0))
        pool.add(_tx(1, 1.0, 100.0))
        packed = pool.pack_block(100.0)
        assert packed[0].tx_id == 0


class TestArrivalProcess:
    def test_poisson_rate(self):
        proc = TxArrivalProcess(rate=5.0, seed=1)
        counts = [len(proc.arrivals(10.0)) for _ in range(200)]
        assert np.mean(counts) == pytest.approx(50.0, rel=0.1)

    def test_seeded_reproducibility(self):
        a = TxArrivalProcess(rate=2.0, seed=3).arrivals(50.0)
        b = TxArrivalProcess(rate=2.0, seed=3).arrivals(50.0)
        assert [(t.fee, t.size) for t in a] == \
            [(t.fee, t.size) for t in b]

    def test_fee_rates_heavy_tailed(self):
        proc = TxArrivalProcess(rate=10.0, fee_sigma=1.0, seed=5)
        txs = proc.arrivals(500.0)
        rates = np.array([t.fee_rate for t in txs])
        assert np.mean(rates) > np.median(rates)  # right skew

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TxArrivalProcess(rate=0.0)
        proc = TxArrivalProcess(rate=1.0)
        with pytest.raises(ConfigurationError):
            proc.arrivals(-1.0)


class TestFeeSimulation:
    def test_fees_increase_with_block_size(self):
        def run(max_bytes):
            proc = TxArrivalProcess(rate=3.0, seed=7)
            return simulate_fee_revenue(proc, block_interval=600.0,
                                        blocks=20,
                                        max_block_bytes=max_bytes)

        small = run(1e5)
        large = run(2e6)
        assert large.mean_fees > small.mean_fees

    def test_fees_saturate_when_mempool_drains(self):
        def run(max_bytes):
            proc = TxArrivalProcess(rate=1.0, seed=9)
            return simulate_fee_revenue(proc, block_interval=600.0,
                                        blocks=30,
                                        max_block_bytes=max_bytes)

        # Demand ~ 1 tx/s * 600 s * 500 B = 3e5 B per block; limits far
        # above that yield the same revenue.
        big = run(5e6)
        bigger = run(5e7)
        assert big.mean_fees == pytest.approx(bigger.mean_fees, rel=0.05)
        assert bigger.backlog < 100

    def test_small_blocks_build_backlog(self):
        proc = TxArrivalProcess(rate=3.0, seed=11)
        res = simulate_fee_revenue(proc, block_interval=600.0, blocks=30,
                                   max_block_bytes=1e5)
        assert res.backlog > 1000

    def test_validation(self):
        proc = TxArrivalProcess(rate=1.0)
        with pytest.raises(ConfigurationError):
            simulate_fee_revenue(proc, block_interval=0.0, blocks=10,
                                 max_block_bytes=1e6)


class TestMempoolProperties:
    """Property-based invariants of the greedy packer."""

    def test_packed_bytes_never_exceed_limit(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.lists(st.tuples(st.floats(0.0, 100.0),
                                  st.floats(64.0, 5000.0)),
                        min_size=0, max_size=40),
               st.floats(100.0, 10000.0))
        @settings(max_examples=80, deadline=None)
        def check(items, limit):
            pool = Mempool()
            for i, (fee, size) in enumerate(items):
                pool.add(_tx(i, fee, size))
            packed = pool.pack_block(limit)
            assert sum(t.size for t in packed) <= limit
            # Conservation: packed + pooled == added.
            assert len(packed) + len(pool) == len(items)

        check()

    def test_packing_is_greedy_optimal_on_uniform_sizes(self):
        """With equal sizes the greedy pack IS the optimal knapsack:
        it takes the highest-fee transactions that fit."""
        pool = Mempool()
        fees = [5.0, 9.0, 1.0, 7.0, 3.0]
        for i, fee in enumerate(fees):
            pool.add(_tx(i, fee, 100.0))
        packed = pool.pack_block(300.0)
        assert sorted(t.fee for t in packed) == [5.0, 7.0, 9.0]
