"""Difficulty retargeting controller."""

import numpy as np
import pytest

from repro.blockchain import (Difficulty, DifficultyAdjuster, PowOracle,
                              RetargetPolicy, simulate_retargeting)
from repro.exceptions import ConfigurationError


class TestRetargetPolicy:
    def test_fast_epoch_raises_difficulty(self):
        policy = RetargetPolicy(target_interval=600.0, epoch_blocks=10)
        d = Difficulty(unit_solve_time=1000.0)
        # Epoch took half the target time: difficulty doubles.
        out = policy.adjust(d, actual_epoch_seconds=3000.0)
        assert out.unit_solve_time == pytest.approx(2000.0)

    def test_slow_epoch_lowers_difficulty(self):
        policy = RetargetPolicy(target_interval=600.0, epoch_blocks=10)
        d = Difficulty(unit_solve_time=1000.0)
        out = policy.adjust(d, actual_epoch_seconds=12000.0)
        assert out.unit_solve_time == pytest.approx(500.0)

    def test_adjustment_clamped(self):
        policy = RetargetPolicy(target_interval=600.0, epoch_blocks=10,
                                max_ratio=4.0)
        d = Difficulty(unit_solve_time=1000.0)
        out = policy.adjust(d, actual_epoch_seconds=1.0)
        assert out.unit_solve_time == pytest.approx(4000.0)
        out = policy.adjust(d, actual_epoch_seconds=1e9)
        assert out.unit_solve_time == pytest.approx(250.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetargetPolicy(target_interval=0.0)
        with pytest.raises(ConfigurationError):
            RetargetPolicy(target_interval=1.0, epoch_blocks=0)
        with pytest.raises(ConfigurationError):
            RetargetPolicy(target_interval=1.0, max_ratio=1.0)
        policy = RetargetPolicy(target_interval=600.0)
        with pytest.raises(ConfigurationError):
            policy.adjust(Difficulty(1.0), actual_epoch_seconds=0.0)


class TestClosedLoop:
    def test_interval_tracks_target_under_demand_shock(self):
        """After demand doubles, intervals return near target in a few
        epochs."""
        policy = RetargetPolicy(target_interval=600.0, epoch_blocks=256)
        initial = Difficulty(unit_solve_time=600.0 * 100.0)
        demand = [100.0] * 5 + [200.0] * 10
        history = simulate_retargeting(demand, policy, initial, seed=1)
        tail = [rec.mean_interval for rec in history[-4:]]
        assert np.mean(tail) == pytest.approx(600.0, rel=0.15)

    def test_difficulty_scales_with_demand(self):
        policy = RetargetPolicy(target_interval=600.0, epoch_blocks=256)
        initial = Difficulty(unit_solve_time=600.0 * 100.0)
        history = simulate_retargeting([100.0] * 5 + [400.0] * 10, policy,
                                       initial, seed=2)
        # Steady-state difficulty ~ demand * target.
        assert history[-1].difficulty == pytest.approx(600.0 * 400.0,
                                                       rel=0.25)

    def test_adjuster_validation(self):
        policy = RetargetPolicy(target_interval=600.0, epoch_blocks=4)
        adjuster = DifficultyAdjuster(policy, Difficulty(100.0))
        oracle = PowOracle(Difficulty(100.0), seed=0)
        with pytest.raises(ConfigurationError):
            adjuster.run_epoch(oracle, 0.0)

    def test_history_recorded(self):
        policy = RetargetPolicy(target_interval=10.0, epoch_blocks=8)
        history = simulate_retargeting([50.0] * 3, policy,
                                       Difficulty(unit_solve_time=500.0),
                                       seed=3)
        assert len(history) == 3
        assert all(rec.total_units == 50.0 for rec in history)
