"""CLI entry point."""

import json

from repro.cli import EXPERIMENTS, build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["does-not-exist"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_failing_experiment_exits_1_with_one_line_message(
            self, capsys, monkeypatch):
        from repro.exceptions import ConvergenceError

        def exploding():
            """A deliberately failing experiment."""
            raise ConvergenceError("solver blew past its budget")

        monkeypatch.setitem(EXPERIMENTS, "boom", exploding)
        assert main(["boom"]) == 1
        err = capsys.readouterr().err
        assert "experiment 'boom' failed" in err
        assert "solver blew past its budget" in err
        assert len(err.strip().splitlines()) == 1

    def test_transient_provider_error_also_caught(self, capsys,
                                                  monkeypatch):
        from repro.exceptions import TransientProviderError

        def flaky():
            """A deliberately flaky experiment."""
            raise TransientProviderError("CSP down", provider="csp")

        monkeypatch.setitem(EXPERIMENTS, "flaky", flaky)
        assert main(["flaky"]) == 1
        assert "TransientProviderError" in capsys.readouterr().err

    def test_chaos_experiment_registered(self):
        assert "chaos" in EXPERIMENTS

    def test_runs_fast_experiment(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_runs_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_parser_help_mentions_paper(self):
        parser = build_parser()
        assert "Blockchain" in parser.description

    def test_every_registered_experiment_is_callable(self):
        for fn in EXPERIMENTS.values():
            assert callable(fn)
            assert fn.__doc__

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_no_experiment_is_a_usage_error(self, capsys):
        assert main([]) == 2
        assert "experiment id" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_grid(self, capsys):
        assert main(["serve", "--grid", "p_c:0.5:1.3:4"]) == 0
        captured = capsys.readouterr()
        assert "p_c grid" in captured.out
        assert "hit_rate" in captured.err

    def test_serve_repeat_hits_cache(self, capsys):
        assert main(["serve", "--grid", "p_c:0.5:1.3:3",
                     "--repeat", "2", "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "hits=3" in err
        assert "misses=3" in err

    def test_serve_bad_grid(self, capsys):
        assert main(["serve", "--grid", "nope:0:1:4"]) == 2
        assert "bad --grid" in capsys.readouterr().err
        assert main(["serve", "--grid", "p_c:0:1"]) == 2

    def test_serve_writes_output(self, tmp_path, capsys):
        out = tmp_path / "grid.json"
        assert main(["serve", "--grid", "p_c:0.5:1.3:3", "--quiet",
                     "--output", str(out)]) == 0
        assert out.exists()

    def test_serve_invalid_grid_point(self, capsys):
        # fork rate 1.0 is out of range -> ConfigurationError, exit 2
        assert main(["serve", "--grid", "beta:1.0:1.0:1"]) == 2
        assert "bad grid point" in capsys.readouterr().err


class TestMetricsCommand:
    def test_prometheus_output_is_parseable(self, capsys):
        from repro.telemetry import parse_prometheus

        assert main(["metrics", "--grid", "p_c:0.5:1.3:3",
                     "--repeat", "2", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        samples = parse_prometheus(out)
        names = {s["name"] for s in samples}
        assert "serving_batches_total" in names
        assert "cache_lookups_total" in names
        # The second pass hits the cache, and the exposition says so.
        hits = [s for s in samples
                if s["name"] == "cache_lookups_total"
                and s["labels"].get("layer") == "memory"]
        assert hits and hits[0]["value"] >= 3

    def test_json_output_is_valid(self, capsys):
        import json

        assert main(["metrics", "--grid", "p_c:0.5:1.3:3",
                     "--repeat", "1", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["serving_batches_total"]["kind"] == "counter"

    def test_both_formats_to_files(self, tmp_path, capsys):
        import json

        from repro.telemetry import parse_prometheus

        base = tmp_path / "metrics"
        assert main(["metrics", "--grid", "p_c:0.5:1.3:3",
                     "--repeat", "1", "--output", str(base)]) == 0
        json.loads((tmp_path / "metrics.json").read_text())
        parse_prometheus((tmp_path / "metrics.prom").read_text())

    def test_trace_flag_writes_span_tree(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        assert main(["metrics", "--grid", "p_c:0.5:1.3:3",
                     "--repeat", "1", "--format", "json",
                     "--trace", str(trace)]) == 0
        forest = json.loads(trace.read_text())
        assert any(root["name"] == "serving.batch" for root in forest)
        batch = [r for r in forest if r["name"] == "serving.batch"][0]
        assert batch["duration"] > 0
        assert batch["attrs"]["size"] == 3

    def test_events_flag_writes_jsonl(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["metrics", "--grid", "p_c:0.5:1.3:3",
                     "--repeat", "1", "--format", "json",
                     "--events", str(events)]) == 0
        assert events.exists()

    def test_serve_trace_flag(self, tmp_path, capsys):
        import json

        trace = tmp_path / "serve_trace.json"
        assert main(["serve", "--grid", "p_c:0.5:1.3:3", "--quiet",
                     "--trace", str(trace)]) == 0
        forest = json.loads(trace.read_text())
        assert forest and forest[0]["name"] == "serving.batch"

    def test_metrics_bad_grid(self, capsys):
        assert main(["metrics", "--grid", "nope:0:1:4"]) == 2
        assert "bad --grid" in capsys.readouterr().err

    def test_telemetry_left_disabled_after_run(self, capsys):
        from repro.telemetry import telemetry_enabled

        assert main(["metrics", "--grid", "p_c:0.5:1.3:3",
                     "--repeat", "1", "--format", "json"]) == 0
        capsys.readouterr()
        assert not telemetry_enabled()


class TestBenchCommand:
    """`repro-mining bench` plumbing, with run_bench stubbed for speed.

    The real harness is exercised by tests/kernels/test_bench.py; here
    we pin exit codes, baseline auto-loading, and report writing.
    """

    @staticmethod
    def _fake_report(scalar_median):
        from repro.kernels import BenchCaseResult, BenchReport

        def case(kernel, median):
            return BenchCaseResult(
                solver="connected", kernel=kernel, n=8,
                median_s=median, p95_s=median, repeats=1,
                converged=True, iterations=5, max_iter=3000,
                capped=False)

        return BenchReport(repeats=1, sizes=[8],
                           cases=[case("scalar", scalar_median),
                                  case("running", 1.0),
                                  case("vectorized", 1.0)],
                           speedups={"connected/n=8": scalar_median},
                           notes=["stubbed run"])

    def _patch(self, monkeypatch, scalar_median):
        import repro.kernels as kernels

        monkeypatch.setattr(
            kernels, "run_bench",
            lambda **kw: self._fake_report(scalar_median))

    def test_writes_report_and_exits_zero(self, tmp_path, capsys,
                                          monkeypatch):
        import json

        self._patch(monkeypatch, 1.0)
        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["cases"][0]["solver"] == "connected"
        captured = capsys.readouterr()
        assert "connected/scalar/n=8" in captured.out
        assert "note: stubbed run" in captured.err

    def test_previous_output_is_default_baseline(self, tmp_path,
                                                 capsys, monkeypatch):
        out = tmp_path / "bench.json"
        self._patch(monkeypatch, 1.0)
        assert main(["bench", "-o", str(out)]) == 0
        # Second run: scalar case 3x slower relative to its peers.
        self._patch(monkeypatch, 3.0)
        assert main(["bench", "-o", str(out)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION connected/scalar/n=8" in err

    def test_no_compare_skips_baseline(self, tmp_path, monkeypatch):
        out = tmp_path / "bench.json"
        self._patch(monkeypatch, 1.0)
        assert main(["bench", "-o", str(out)]) == 0
        self._patch(monkeypatch, 3.0)
        assert main(["bench", "-o", str(out), "--no-compare"]) == 0

    def test_tolerance_flag_loosens_check(self, tmp_path, capsys,
                                          monkeypatch):
        out = tmp_path / "bench.json"
        self._patch(monkeypatch, 1.0)
        assert main(["bench", "-o", str(out)]) == 0
        self._patch(monkeypatch, 1.1)
        assert main(["bench", "-o", str(out),
                     "--tolerance", "5.0"]) == 0

    def test_bad_sizes_exits_two(self, tmp_path, capsys, monkeypatch):
        self._patch(monkeypatch, 1.0)
        assert main(["bench", "--sizes", "abc",
                     "-o", str(tmp_path / "b.json")]) == 2
        assert "bad --sizes" in capsys.readouterr().err

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys,
                                           monkeypatch):
        self._patch(monkeypatch, 1.0)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["bench", "-o", str(tmp_path / "b.json"),
                     "--baseline", str(bad)]) == 2
        assert "could not load baseline" in capsys.readouterr().err


class TestControlCommand:
    def test_check_passes(self, capsys):
        assert main(["control", "--check"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "FAIL" not in out
        # All four golden families are printed.
        for name in ("connected-closed-form", "standalone-cross-solver",
                     "serving-vs-direct", "all-cloud-limit"):
            assert name in out

    def test_no_mode_is_usage_error(self, capsys):
        assert main(["control"]) == 2
        assert "--check or --run" in capsys.readouterr().err

    def test_bad_windows_is_usage_error(self, capsys):
        assert main(["control", "--run", "--windows", "0"]) == 2

    def test_run_cache_collapse_applies_remediation(self, capsys):
        assert main(["control", "--run",
                     "--scenario", "cache-collapse"]) == 0
        captured = capsys.readouterr()
        assert "resize-cache->applied" in captured.out
        assert "1 applied" in captured.err

    def test_dry_run_verifies_without_applying(self, capsys):
        assert main(["control", "--run", "--dry-run",
                     "--scenario", "slo-breach"]) == 0
        captured = capsys.readouterr()
        assert "->dry-run" in captured.out
        assert "0 applied" in captured.err

    def test_events_stream_carries_decision_chain(self, tmp_path,
                                                  capsys):
        events = tmp_path / "ctrl.jsonl"
        assert main(["control", "--run", "--scenario", "retry-storm",
                     "--events", str(events), "--quiet"]) == 0
        kinds = [json.loads(line)["kind"]
                 for line in events.read_text().splitlines()]
        for required in ("control.detected", "control.proposed",
                         "control.verified", "control.applied"):
            assert required in kinds

    def test_output_reports_are_json(self, tmp_path, capsys):
        out = tmp_path / "reports.json"
        assert main(["control", "--run", "--scenario", "warm-drift",
                     "--quiet", "-o", str(out)]) == 0
        reports = json.loads(out.read_text())
        assert len(reports) == 3
        assert reports[0]["anomalies"][0]["kind"] == "warm-start-drift"

    def test_chaos_with_control_flag(self, capsys):
        import repro.cli as cli
        calls = {}

        def fake():
            calls["hit"] = True
            from repro.analysis.series import ResultTable
            return ResultTable(title="t", columns=["x"], rows=[(1.0,)])

        original = cli.EXPERIMENTS["chaos-control"]
        cli.EXPERIMENTS["chaos-control"] = fake
        try:
            assert main(["chaos", "--with-control"]) == 0
        finally:
            cli.EXPERIMENTS["chaos-control"] = original
        assert calls.get("hit")
