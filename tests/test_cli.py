"""CLI entry point."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["does-not-exist"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_fast_experiment(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_runs_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_parser_help_mentions_paper(self):
        parser = build_parser()
        assert "Blockchain" in parser.description

    def test_every_registered_experiment_is_callable(self):
        for fn in EXPERIMENTS.values():
            assert callable(fn)
            assert fn.__doc__
