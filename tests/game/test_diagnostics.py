"""Convergence reporting utilities."""

import pytest

from repro.game.diagnostics import (ConvergenceReport, ResidualRecorder,
                                    classify_residuals)


class TestResidualRecorder:
    def test_record_below_tolerance(self):
        rec = ResidualRecorder(1e-3)
        assert not rec.record(1.0)
        assert rec.record(1e-4)

    def test_last_residual(self):
        rec = ResidualRecorder(1e-3)
        rec.record(0.5)
        rec.record(0.25)
        assert rec.last_residual == 0.25

    def test_empty_recorder_reports_inf(self):
        rec = ResidualRecorder(1e-3)
        assert rec.last_residual == float("inf")

    def test_history_trimming(self):
        rec = ResidualRecorder(1e-12, max_history=10)
        for i in range(50):
            rec.record(1.0 / (i + 1))
        report = rec.report(False, 50)
        assert len(report.history) <= 10
        # Most recent residual always retained.
        assert report.history[-1] == pytest.approx(1.0 / 50)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            ResidualRecorder(0.0)

    def test_truncated_flag_starts_false(self):
        rec = ResidualRecorder(1e-3, max_history=10)
        for _ in range(10):
            rec.record(1.0)
        assert rec.truncated is False
        assert rec.to_dict()["truncated"] is False

    def test_truncated_flag_set_and_sticky(self):
        rec = ResidualRecorder(1e-12, max_history=10)
        for i in range(11):
            rec.record(1.0 / (i + 1))
        assert rec.truncated is True
        # Sticky: the flag survives later trims and further records.
        rec.record(1e-3)
        assert rec.truncated is True
        assert rec.to_dict()["truncated"] is True

    def test_to_dict_surfaces_truncation(self):
        rec = ResidualRecorder(1e-9, max_history=6)
        for i in range(20):
            rec.record(2.0 ** -i)
        payload = rec.to_dict()
        assert payload["truncated"] is True
        assert len(payload["residuals"]) < 20
        assert payload["last_residual"] == pytest.approx(2.0 ** -19)


class TestClassifyTruncatedHistories:
    """classify_residuals stays sane on truncated (tail-only) histories.

    Truncation drops the oldest residuals, so the classifier only ever
    sees a mid-run suffix — its verdicts must reflect the tail, not be
    confused by the missing prefix.
    """

    def _truncated_history(self, values, max_history=10):
        rec = ResidualRecorder(1e-9, max_history=max_history)
        for v in values:
            rec.record(v)
        assert rec.truncated
        return rec.to_dict()["residuals"]

    def test_converged_tail_classifies_converged(self):
        history = self._truncated_history(
            [10.0 / (i + 1) for i in range(40)] + [1e-12])
        assert classify_residuals(history, 1e-9) == "converged"

    def test_diverging_tail_detected_after_truncation(self):
        history = self._truncated_history(
            [1e-3] * 30 + [1e-3 * 3.0 ** i for i in range(8)])
        assert classify_residuals(history, 1e-9) == "diverging"

    def test_stalled_plateau_detected_after_truncation(self):
        history = self._truncated_history([0.5] * 40)
        assert classify_residuals(history, 1e-9) == "stalled"

    def test_oscillating_tail_detected_after_truncation(self):
        cycle = [0.4, 0.6] * 30
        history = self._truncated_history(cycle)
        assert classify_residuals(history, 1e-9) == "oscillating"

    def test_empty_history_still_empty(self):
        assert classify_residuals([], 1e-9) == "empty"

    def test_report_fields(self):
        rec = ResidualRecorder(1e-3)
        rec.record(1e-4)
        report = rec.report(True, 7, message="done")
        assert report.converged
        assert report.iterations == 7
        assert report.tolerance == 1e-3
        assert report.message == "done"


class TestConvergenceReport:
    def test_str_converged(self):
        rep = ConvergenceReport(True, 12, 1e-10, 1e-9)
        text = str(rep)
        assert "converged" in text
        assert "12" in text

    def test_str_not_converged_with_message(self):
        rep = ConvergenceReport(False, 3, 0.5, 1e-9, message="stalled")
        text = str(rep)
        assert "NOT converged" in text
        assert "stalled" in text
