"""Convergence reporting utilities."""

import pytest

from repro.game.diagnostics import ConvergenceReport, ResidualRecorder


class TestResidualRecorder:
    def test_record_below_tolerance(self):
        rec = ResidualRecorder(1e-3)
        assert not rec.record(1.0)
        assert rec.record(1e-4)

    def test_last_residual(self):
        rec = ResidualRecorder(1e-3)
        rec.record(0.5)
        rec.record(0.25)
        assert rec.last_residual == 0.25

    def test_empty_recorder_reports_inf(self):
        rec = ResidualRecorder(1e-3)
        assert rec.last_residual == float("inf")

    def test_history_trimming(self):
        rec = ResidualRecorder(1e-12, max_history=10)
        for i in range(50):
            rec.record(1.0 / (i + 1))
        report = rec.report(False, 50)
        assert len(report.history) <= 10
        # Most recent residual always retained.
        assert report.history[-1] == pytest.approx(1.0 / 50)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            ResidualRecorder(0.0)

    def test_report_fields(self):
        rec = ResidualRecorder(1e-3)
        rec.record(1e-4)
        report = rec.report(True, 7, message="done")
        assert report.converged
        assert report.iterations == 7
        assert report.tolerance == 1e-3
        assert report.message == "done"


class TestConvergenceReport:
    def test_str_converged(self):
        rep = ConvergenceReport(True, 12, 1e-10, 1e-9)
        text = str(rep)
        assert "converged" in text
        assert "12" in text

    def test_str_not_converged_with_message(self):
        rep = ConvergenceReport(False, 3, 0.5, 1e-9, message="stalled")
        text = str(rep)
        assert "NOT converged" in text
        assert "stalled" in text
