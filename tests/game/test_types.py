"""Strategy spaces and the ContinuousGame container."""

import numpy as np
import pytest

from repro.game.types import BudgetBox, ContinuousGame, Player


class _ConstantPlayer(Player):
    """Minimal player for container tests."""

    def __init__(self, prices, budget):
        self.space = BudgetBox(np.asarray(prices, dtype=float), budget)

    def payoff(self, own, others):
        return -float(np.sum(own ** 2))

    def payoff_gradient(self, own, others):
        return -2.0 * own


class TestBudgetBox:
    def test_dim_from_prices(self):
        box = BudgetBox(np.array([2.0, 1.0]), 10.0)
        assert box.dim == 2

    def test_contains_interior(self):
        box = BudgetBox(np.array([2.0, 1.0]), 10.0)
        assert box.contains(np.array([1.0, 1.0]))

    def test_contains_rejects_budget_violation(self):
        box = BudgetBox(np.array([2.0, 1.0]), 10.0)
        assert not box.contains(np.array([4.0, 4.0]))

    def test_contains_rejects_negative(self):
        box = BudgetBox(np.array([2.0, 1.0]), 10.0)
        assert not box.contains(np.array([-1.0, 0.0]))

    def test_interior_point_strictly_feasible(self):
        box = BudgetBox(np.array([2.0, 1.0]), 10.0)
        p = box.interior_point()
        assert np.all(p > 0)
        assert float(np.dot(box.prices, p)) < box.budget

    def test_project_returns_feasible(self):
        box = BudgetBox(np.array([2.0, 1.0]), 10.0)
        out = box.project(np.array([100.0, -3.0]))
        assert box.contains(out, tol=1e-6)

    def test_invalid_prices_rejected(self):
        with pytest.raises(ValueError):
            BudgetBox(np.array([0.0, 1.0]), 10.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BudgetBox(np.array([1.0]), -5.0)

    def test_2d_prices_rejected(self):
        with pytest.raises(ValueError):
            BudgetBox(np.array([[1.0, 2.0]]), 5.0)


class TestContinuousGame:
    def _game(self, n=3):
        return ContinuousGame([_ConstantPlayer([2.0, 1.0], 10.0)
                               for _ in range(n)])

    def test_num_players(self):
        assert self._game(4).num_players == 4

    def test_stack_split_roundtrip(self):
        game = self._game(3)
        blocks = [np.array([1.0, 2.0]), np.array([3.0, 4.0]),
                  np.array([5.0, 6.0])]
        flat = game.stack(blocks)
        assert flat.shape == (6,)
        back = game.split(flat)
        for a, b in zip(blocks, back):
            assert np.array_equal(a, b)

    def test_split_rejects_wrong_length(self):
        game = self._game(2)
        with pytest.raises(ValueError):
            game.split(np.zeros(5))

    def test_initial_profile_feasible(self):
        game = self._game(3)
        for player, block in zip(game.players, game.initial_profile()):
            assert player.space.contains(block)

    def test_empty_game_rejected(self):
        with pytest.raises(ValueError):
            ContinuousGame([])
