"""Projections: closed-form correctness and optimality properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.projections import (dykstra, project_budget_orthant,
                                    project_halfspace, project_nonnegative)


def brute_force_budget_projection(x, prices, budget, grid=400):
    """Dense-sampling reference for the 2-D budget-orthant projection."""
    best = None
    best_d = np.inf
    # Sample the feasible region boundary and interior coarsely.
    max0 = budget / prices[0]
    max1 = budget / prices[1]
    for a in np.linspace(0, max0, grid):
        rem = budget - prices[0] * a
        for b in np.linspace(0, max(rem / prices[1], 0), 40):
            d = (a - x[0]) ** 2 + (b - x[1]) ** 2
            if d < best_d:
                best_d = d
                best = np.array([a, b])
    return best


class TestNonnegative:
    def test_clips_negatives(self):
        out = project_nonnegative(np.array([-1.0, 2.0, -0.5]))
        assert np.array_equal(out, [0.0, 2.0, 0.0])

    def test_identity_on_feasible(self):
        x = np.array([0.0, 3.0])
        assert np.array_equal(project_nonnegative(x), x)


class TestHalfspace:
    def test_feasible_point_unchanged(self):
        x = np.array([1.0, 1.0])
        out = project_halfspace(x, np.array([1.0, 1.0]), 5.0)
        assert out is x

    def test_projection_lands_on_boundary(self):
        x = np.array([4.0, 4.0])
        a = np.array([1.0, 1.0])
        out = project_halfspace(x, a, 4.0)
        assert np.isclose(np.dot(a, out), 4.0)

    def test_projection_is_orthogonal(self):
        x = np.array([5.0, 1.0])
        a = np.array([1.0, 0.0])
        out = project_halfspace(x, a, 2.0)
        assert np.allclose(out, [2.0, 1.0])

    def test_zero_normal_rejected_when_infeasible(self):
        # 0 . x = 0 > -1: the constraint is violated but no direction can
        # fix it — must raise instead of dividing by zero.
        with pytest.raises(ValueError):
            project_halfspace(np.array([1.0]), np.array([0.0]), -1.0)


class TestBudgetOrthant:
    def test_interior_point_unchanged(self):
        prices = np.array([2.0, 1.0])
        out = project_budget_orthant(np.array([1.0, 1.0]), prices, 100.0)
        assert np.allclose(out, [1.0, 1.0])

    def test_negative_coordinates_clipped(self):
        prices = np.array([2.0, 1.0])
        out = project_budget_orthant(np.array([-3.0, 1.0]), prices, 100.0)
        assert np.allclose(out, [0.0, 1.0])

    def test_budget_overflow_lands_on_plane(self):
        prices = np.array([2.0, 1.0])
        out = project_budget_orthant(np.array([100.0, 100.0]), prices, 50.0)
        assert np.isclose(np.dot(prices, out), 50.0, atol=1e-8)
        assert np.all(out >= 0)

    def test_matches_brute_force(self):
        prices = np.array([2.0, 1.0])
        for x in ([30.0, 10.0], [5.0, 60.0], [-2.0, 80.0], [40.0, 40.0]):
            exact = project_budget_orthant(np.array(x), prices, 50.0)
            approx = brute_force_budget_projection(np.array(x), prices, 50.0)
            assert np.linalg.norm(exact - approx) < 0.2

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            project_budget_orthant(np.array([1.0]), np.array([1.0]), -1.0)

    def test_nonpositive_price_rejected(self):
        with pytest.raises(ValueError):
            project_budget_orthant(np.array([1.0, 1.0]),
                                   np.array([1.0, 0.0]), 10.0)

    @given(st.lists(st.floats(-50, 150), min_size=2, max_size=6),
           st.floats(0.1, 10), st.floats(0.1, 10), st.floats(1, 200))
    @settings(max_examples=150, deadline=None)
    def test_projection_properties(self, xs, p0, p1, budget):
        """The projection is feasible and no farther than any sampled
        feasible point (variational characterization, sampled)."""
        dim = len(xs)
        x = np.array(xs)
        prices = np.linspace(p0, p1, dim)
        y = project_budget_orthant(x, prices, budget)
        assert np.all(y >= -1e-9)
        assert float(np.dot(prices, y)) <= budget + 1e-6
        # Variational inequality: (x - y) . (z - y) <= 0 for feasible z.
        rng = np.random.default_rng(0)
        for _ in range(10):
            z = rng.uniform(0, 1, dim)
            z = z * budget / max(float(np.dot(prices, z)), 1e-12)
            z *= rng.uniform(0, 1)
            assert float(np.dot(x - y, z - y)) <= 1e-6 * (
                1 + np.linalg.norm(x))


class TestDykstra:
    def test_intersection_of_halfspaces(self):
        # Project (3, 3) onto {x <= 1} ∩ {y <= 1} == box corner (1, 1).
        p1 = lambda v: project_halfspace(v, np.array([1.0, 0.0]), 1.0)
        p2 = lambda v: project_halfspace(v, np.array([0.0, 1.0]), 1.0)
        out = dykstra(np.array([3.0, 3.0]), [p1, p2])
        assert np.allclose(out, [1.0, 1.0], atol=1e-8)

    def test_budget_and_capacity(self):
        prices = np.array([2.0, 1.0])
        budget_proj = lambda v: project_budget_orthant(v, prices, 100.0)
        cap_proj = lambda v: project_halfspace(v, np.array([1.0, 0.0]), 5.0)
        out = dykstra(np.array([50.0, 20.0]), [budget_proj, cap_proj])
        assert out[0] <= 5.0 + 1e-8
        assert float(np.dot(prices, out)) <= 100.0 + 1e-6
        assert np.all(out >= -1e-9)

    def test_empty_projection_list_copies(self):
        x = np.array([1.0, 2.0])
        out = dykstra(x, [])
        assert np.array_equal(out, x)
        assert out is not x

    def test_feasible_point_fixed(self):
        p1 = lambda v: project_nonnegative(v)
        p2 = lambda v: project_halfspace(v, np.array([1.0, 1.0]), 10.0)
        x = np.array([2.0, 3.0])
        assert np.allclose(dykstra(x, [p1, p2]), x)
