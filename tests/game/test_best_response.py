"""Generic best-response iteration on games with known equilibria.

The workhorse check is a linear-quadratic Cournot duopoly whose Nash
equilibrium is available in closed form: quantities
``q_i* = (a - c_i' ) /`` the usual expressions — with identical costs,
``q* = (a - c) / (3 b)`` each.
"""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.game.best_response import (BestResponseOptions,
                                      projected_gradient_response,
                                      solve_nash)
from repro.game.types import ContinuousGame, Player, StrategySpace


class _Interval(StrategySpace):
    def __init__(self, lo, hi):
        self.lo, self.hi = lo, hi
        self.dim = 1

    def project(self, x):
        return np.clip(x, self.lo, self.hi)

    def contains(self, x, tol=1e-9):
        return bool(self.lo - tol <= x[0] <= self.hi + tol)

    def interior_point(self):
        return np.array([0.5 * (self.lo + self.hi)])


class _CournotPlayer(Player):
    """Cournot firm: payoff (a - b (q_i + q_j)) q_i - c q_i."""

    def __init__(self, a=10.0, b=1.0, c=1.0, analytic=True):
        self.a, self.b, self.c = a, b, c
        self.space = _Interval(0.0, a / b)
        self.analytic = analytic

    def payoff(self, own, others):
        q = float(own[0])
        return (self.a - self.b * (q + others)) * q - self.c * q

    def payoff_gradient(self, own, others):
        q = float(own[0])
        return np.array([self.a - self.c - self.b * others
                         - 2.0 * self.b * q])

    def best_response(self, others):
        if not self.analytic:
            return None
        q = (self.a - self.c - self.b * others) / (2.0 * self.b)
        return np.array([max(q, 0.0)])


def _cournot_context(profile, i):
    return float(sum(float(profile[j][0]) for j in range(len(profile))
                     if j != i))


class TestCournot:
    def test_converges_to_closed_form(self):
        game = ContinuousGame([_CournotPlayer(), _CournotPlayer()])
        result = solve_nash(game, _cournot_context,
                            BestResponseOptions(damping=0.5))
        assert result.converged
        expected = (10.0 - 1.0) / 3.0
        for block in result.profile:
            assert abs(float(block[0]) - expected) < 1e-6

    def test_jacobi_sweep_matches(self):
        game = ContinuousGame([_CournotPlayer(), _CournotPlayer()])
        result = solve_nash(game, _cournot_context,
                            BestResponseOptions(damping=0.5,
                                                sweep="jacobi"))
        assert result.converged
        assert abs(float(result.profile[0][0]) - 3.0) < 1e-6

    def test_gradient_fallback_matches_analytic(self):
        game = ContinuousGame([_CournotPlayer(analytic=False),
                               _CournotPlayer(analytic=False)])
        result = solve_nash(game, _cournot_context,
                            BestResponseOptions(damping=0.5, tol=1e-7,
                                                max_iter=500))
        assert abs(float(result.profile[0][0]) - 3.0) < 1e-3

    def test_asymmetric_costs(self):
        game = ContinuousGame([_CournotPlayer(c=1.0),
                               _CournotPlayer(c=4.0)])
        result = solve_nash(game, _cournot_context,
                            BestResponseOptions(damping=0.5))
        # q1* = (a - 2 c1 + c2)/(3b), q2* = (a - 2 c2 + c1)/(3b)
        assert abs(float(result.profile[0][0]) - (10 - 2 + 4) / 3.0) < 1e-6
        assert abs(float(result.profile[1][0]) - (10 - 8 + 1) / 3.0) < 1e-6

    def test_initial_profile_respected(self):
        game = ContinuousGame([_CournotPlayer(), _CournotPlayer()])
        result = solve_nash(game, _cournot_context,
                            BestResponseOptions(damping=0.5),
                            initial=[np.array([1.0]), np.array([8.0])])
        assert result.converged

    def test_wrong_initial_length_rejected(self):
        game = ContinuousGame([_CournotPlayer(), _CournotPlayer()])
        with pytest.raises(ValueError):
            solve_nash(game, _cournot_context, initial=[np.array([1.0])])

    def test_failure_raises_when_requested(self):
        game = ContinuousGame([_CournotPlayer(), _CournotPlayer()])
        opts = BestResponseOptions(max_iter=1, tol=1e-15,
                                   raise_on_failure=True)
        with pytest.raises(ConvergenceError):
            solve_nash(game, _cournot_context, opts,
                       initial=[np.array([0.1]), np.array([9.0])])


class TestOptions:
    def test_damping_bounds(self):
        with pytest.raises(ValueError):
            BestResponseOptions(damping=0.0)
        with pytest.raises(ValueError):
            BestResponseOptions(damping=1.5)

    def test_unknown_sweep(self):
        with pytest.raises(ValueError):
            BestResponseOptions(sweep="chaotic")

    def test_max_iter_positive(self):
        with pytest.raises(ValueError):
            BestResponseOptions(max_iter=0)


class TestProjectedGradient:
    def test_maximizes_concave_quadratic(self):
        player = _CournotPlayer(analytic=False)
        # Against opponent quantity 3, BR = (10 - 1 - 3)/2 = 3.
        out = projected_gradient_response(player, 3.0, np.array([0.5]))
        assert abs(float(out[0]) - 3.0) < 1e-3

    def test_respects_projection(self):
        player = _CournotPlayer(analytic=False)
        out = projected_gradient_response(player, 20.0, np.array([5.0]))
        assert float(out[0]) >= 0.0
