"""VI solvers on problems with known solutions."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.game.projections import project_nonnegative
from repro.game.vi import (VIProblem, extragradient, monotonicity_gap,
                           natural_residual, solve_vi_adaptive)


def _affine_problem(dim=4, seed=0):
    """VI with F(x) = M x + q, M positive definite: unique solution."""
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(dim, dim))
    M = A @ A.T + dim * np.eye(dim)
    q = rng.normal(size=dim)
    problem = VIProblem(operator=lambda x: M @ x + q,
                        project=project_nonnegative, dim=dim)
    return problem, M, q


def _check_kkt(M, q, x, tol=1e-5):
    """Complementarity for VI(R^n_+, Mx+q): x>=0, F(x)>=0, x.F(x)=0."""
    f = M @ x + q
    assert np.all(x >= -tol)
    assert np.all(f >= -tol)
    assert abs(float(np.dot(x, f))) < tol * 10


class TestExtragradient:
    def test_solves_affine_vi(self):
        problem, M, q = _affine_problem()
        result = extragradient(problem, step=0.05, tol=1e-10)
        assert result.converged
        _check_kkt(M, q, result.solution)

    def test_residual_zero_at_solution(self):
        problem, M, q = _affine_problem()
        result = extragradient(problem, step=0.05, tol=1e-12,
                               max_iter=50000)
        assert natural_residual(problem, result.solution) < 1e-8

    def test_unconstrained_linear_system(self):
        # With projection = identity the VI solves M x = -q exactly.
        rng = np.random.default_rng(1)
        A = rng.normal(size=(3, 3))
        M = A @ A.T + 3 * np.eye(3)
        q = rng.normal(size=3)
        problem = VIProblem(operator=lambda x: M @ x + q,
                            project=lambda x: x, dim=3)
        result = extragradient(problem, step=0.05, tol=1e-12,
                               max_iter=100000)
        assert np.allclose(result.solution, np.linalg.solve(M, -q),
                           atol=1e-6)

    def test_invalid_step_rejected(self):
        problem, _, _ = _affine_problem()
        with pytest.raises(ValueError):
            extragradient(problem, step=-1.0)

    def test_raise_on_failure(self):
        problem, _, _ = _affine_problem()
        with pytest.raises(ConvergenceError):
            extragradient(problem, step=1e-6, tol=1e-14, max_iter=3,
                          raise_on_failure=True)


class TestAdaptive:
    def test_solves_without_lipschitz_knowledge(self):
        problem, M, q = _affine_problem(dim=6, seed=3)
        result = solve_vi_adaptive(problem, step=10.0, tol=1e-10)
        assert result.converged
        _check_kkt(M, q, result.solution)

    def test_matches_fixed_step(self):
        problem, _, _ = _affine_problem(dim=4, seed=5)
        r1 = extragradient(problem, step=0.02, tol=1e-11, max_iter=100000)
        r2 = solve_vi_adaptive(problem, step=5.0, tol=1e-11)
        assert np.allclose(r1.solution, r2.solution, atol=1e-6)

    def test_invalid_shrink_rejected(self):
        problem, _, _ = _affine_problem()
        with pytest.raises(ValueError):
            solve_vi_adaptive(problem, shrink=1.5)


class TestMonotonicity:
    def test_monotone_operator_nonnegative_gap(self):
        _, M, q = _affine_problem(dim=3, seed=7)
        op = lambda x: M @ x + q
        points = np.random.default_rng(0).normal(size=(8, 3))
        assert monotonicity_gap(op, points) >= 0.0

    def test_antimonotone_operator_detected(self):
        op = lambda x: -x
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert monotonicity_gap(op, points) < 0.0
