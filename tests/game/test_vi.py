"""VI solvers on problems with known solutions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConvergenceError
from repro.game.projections import project_nonnegative
from repro.game.vi import (VIProblem, extragradient, monotonicity_gap,
                           natural_residual, solve_vi_adaptive)


def _affine_problem(dim=4, seed=0):
    """VI with F(x) = M x + q, M positive definite: unique solution."""
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(dim, dim))
    M = A @ A.T + dim * np.eye(dim)
    q = rng.normal(size=dim)
    problem = VIProblem(operator=lambda x: M @ x + q,
                        project=project_nonnegative, dim=dim)
    return problem, M, q


def _check_kkt(M, q, x, tol=1e-5):
    """Complementarity for VI(R^n_+, Mx+q): x>=0, F(x)>=0, x.F(x)=0."""
    f = M @ x + q
    assert np.all(x >= -tol)
    assert np.all(f >= -tol)
    assert abs(float(np.dot(x, f))) < tol * 10


class TestExtragradient:
    def test_solves_affine_vi(self):
        problem, M, q = _affine_problem()
        result = extragradient(problem, step=0.05, tol=1e-10)
        assert result.converged
        _check_kkt(M, q, result.solution)

    def test_residual_zero_at_solution(self):
        problem, M, q = _affine_problem()
        result = extragradient(problem, step=0.05, tol=1e-12,
                               max_iter=50000)
        assert natural_residual(problem, result.solution) < 1e-8

    def test_unconstrained_linear_system(self):
        # With projection = identity the VI solves M x = -q exactly.
        rng = np.random.default_rng(1)
        A = rng.normal(size=(3, 3))
        M = A @ A.T + 3 * np.eye(3)
        q = rng.normal(size=3)
        problem = VIProblem(operator=lambda x: M @ x + q,
                            project=lambda x: x, dim=3)
        result = extragradient(problem, step=0.05, tol=1e-12,
                               max_iter=100000)
        assert np.allclose(result.solution, np.linalg.solve(M, -q),
                           atol=1e-6)

    def test_invalid_step_rejected(self):
        problem, _, _ = _affine_problem()
        with pytest.raises(ValueError):
            extragradient(problem, step=-1.0)

    def test_raise_on_failure(self):
        problem, _, _ = _affine_problem()
        with pytest.raises(ConvergenceError):
            extragradient(problem, step=1e-6, tol=1e-14, max_iter=3,
                          raise_on_failure=True)


class TestAdaptive:
    def test_solves_without_lipschitz_knowledge(self):
        problem, M, q = _affine_problem(dim=6, seed=3)
        result = solve_vi_adaptive(problem, step=10.0, tol=1e-10)
        assert result.converged
        _check_kkt(M, q, result.solution)

    def test_matches_fixed_step(self):
        problem, _, _ = _affine_problem(dim=4, seed=5)
        r1 = extragradient(problem, step=0.02, tol=1e-11, max_iter=100000)
        r2 = solve_vi_adaptive(problem, step=5.0, tol=1e-11)
        assert np.allclose(r1.solution, r2.solution, atol=1e-6)

    def test_invalid_shrink_rejected(self):
        problem, _, _ = _affine_problem()
        with pytest.raises(ValueError):
            solve_vi_adaptive(problem, shrink=1.5)


class TestWarmStart:
    """The x0 seam the serving layer relies on: a good initial point
    never costs iterations and never changes the answer."""

    def test_x0_at_solution_is_immediate(self):
        problem, _, _ = _affine_problem()
        cold = extragradient(problem, step=0.05, tol=1e-10)
        warm = extragradient(problem, step=0.05, tol=1e-10,
                             x0=cold.solution)
        assert warm.converged
        assert warm.report.iterations <= 1
        assert np.allclose(warm.solution, cold.solution, atol=1e-9)

    def test_none_x0_matches_legacy_zero_start(self):
        problem, _, _ = _affine_problem(seed=11)
        default = extragradient(problem, step=0.05, tol=1e-10)
        explicit = extragradient(problem, step=0.05, tol=1e-10,
                                 x0=np.zeros(problem.dim))
        assert default.report.iterations == explicit.report.iterations
        assert np.array_equal(default.solution, explicit.solution)

    @settings(max_examples=25, deadline=None)
    @given(dim=st.integers(min_value=2, max_value=6),
           seed=st.integers(min_value=0, max_value=10_000),
           frac=st.floats(min_value=0.05, max_value=0.95))
    def test_warm_start_never_slower_same_equilibrium(self, dim, seed,
                                                      frac):
        # An x0 that is strictly closer to the equilibrium (a partial
        # step from the cold start toward x*, so the initial error is
        # frac < 1 times the cold error along the same direction) must
        # reach the same equilibrium in no more iterations.
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(dim, dim))
        M = A @ A.T + dim * np.eye(dim)
        q = rng.normal(size=dim)
        problem = VIProblem(operator=lambda x: M @ x + q,
                            project=lambda x: x, dim=dim)
        x_star = np.linalg.solve(M, -q)
        step = 0.5 / np.linalg.norm(M, 2)
        cold = extragradient(problem, step=step, tol=1e-9,
                             max_iter=300000)
        warm = extragradient(problem, step=step, tol=1e-9,
                             max_iter=300000, x0=(1.0 - frac) * x_star)
        assert cold.converged and warm.converged
        assert warm.report.iterations <= cold.report.iterations
        assert np.allclose(warm.solution, cold.solution, atol=1e-6)
        assert np.allclose(warm.solution, x_star, atol=1e-5)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_adaptive_accepts_x0(self, seed):
        problem, M, q = _affine_problem(dim=4, seed=seed)
        cold = solve_vi_adaptive(problem, step=5.0, tol=1e-10)
        warm = solve_vi_adaptive(problem, step=5.0, tol=1e-10,
                                 x0=cold.solution)
        assert warm.converged
        assert warm.report.iterations <= cold.report.iterations
        assert np.allclose(warm.solution, cold.solution, atol=1e-7)


class TestMonotonicity:
    def test_monotone_operator_nonnegative_gap(self):
        _, M, q = _affine_problem(dim=3, seed=7)
        op = lambda x: M @ x + q
        points = np.random.default_rng(0).normal(size=(8, 3))
        assert monotonicity_gap(op, points) >= 0.0

    def test_antimonotone_operator_detected(self):
        op = lambda x: -x
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert monotonicity_gap(op, points) < 0.0
