"""Population models: discretized Gaussian and fixed counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.population import FixedPopulation, GaussianPopulation


class TestFixedPopulation:
    def test_degenerate_pmf(self):
        pop = FixedPopulation(7)
        assert np.array_equal(pop.support(), [7])
        assert pop.pmf()[0] == 1.0
        assert pop.mean == 7.0
        assert pop.variance == 0.0

    def test_sampling_is_constant(self, rng):
        pop = FixedPopulation(4)
        assert np.all(pop.sample(rng, size=100) == 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedPopulation(0)


class TestGaussianPopulation:
    def test_pmf_sums_to_one(self):
        pop = GaussianPopulation(10, 2)
        assert float(pop.pmf().sum()) == pytest.approx(1.0, abs=1e-12)

    @given(st.floats(2.0, 40.0), st.floats(0.3, 8.0))
    @settings(max_examples=80, deadline=None)
    def test_pmf_sums_to_one_property(self, mu, sigma):
        pop = GaussianPopulation(mu, sigma)
        assert float(pop.pmf().sum()) == pytest.approx(1.0, abs=1e-9)
        assert np.all(pop.pmf() >= 0)
        assert pop.support()[0] >= 1

    def test_mean_close_to_mu_when_untruncated(self):
        pop = GaussianPopulation(10, 2)
        assert pop.mean == pytest.approx(10.0, abs=0.05)

    def test_variance_close_to_sigma_squared(self):
        pop = GaussianPopulation(10, 2)
        assert pop.variance == pytest.approx(4.0, rel=0.1)

    def test_centered_binning(self):
        """P(k=μ) is the modal bin for integer μ (centered convention)."""
        pop = GaussianPopulation(10, 2)
        ks = pop.support()
        mode = ks[np.argmax(pop.pmf())]
        assert mode == 10

    def test_truncation_bias_small_mu(self):
        """Heavy truncation shifts the mean above μ."""
        pop = GaussianPopulation(2.0, 2.0)
        assert pop.mean > 2.0
        assert pop.truncation_mass() > 0.01

    def test_sampling_matches_pmf(self, rng):
        pop = GaussianPopulation(6, 1.5)
        draws = pop.sample(rng, size=30000)
        for k, p in zip(pop.support(), pop.pmf()):
            if p > 0.02:
                emp = float(np.mean(draws == k))
                assert emp == pytest.approx(p, abs=0.01)

    def test_fig3_toy_example(self):
        """The paper's Fig. 3: μ=10, σ²=4 fits the histogram."""
        pop = GaussianPopulation(10, 2)
        p10 = pop.pmf()[pop.support() == 10][0]
        p6 = pop.pmf()[pop.support() == 6][0]
        assert p10 > 0.15
        assert p6 < 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianPopulation(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            GaussianPopulation(5.0, 0.0)
        with pytest.raises(ConfigurationError):
            GaussianPopulation(5.0, 1.0, tail_sigmas=0.0)

    def test_repr_mentions_support(self):
        pop = GaussianPopulation(5, 1)
        assert "support" in repr(pop)
