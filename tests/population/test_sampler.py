"""Per-block population process."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.population import (FixedPopulation, GaussianPopulation,
                              PopulationProcess)


class TestPopulationProcess:
    def test_counts_match_model(self):
        model = GaussianPopulation(5, 1.5)
        proc = PopulationProcess(model, pool_size=20, seed=0)
        counts = proc.empirical_counts(5000)
        assert np.mean(counts) == pytest.approx(model.mean, abs=0.15)

    def test_active_sets_are_valid(self):
        proc = PopulationProcess(GaussianPopulation(5, 2), pool_size=20,
                                 seed=1)
        for _ in range(100):
            block = proc.next_block()
            assert block.count == len(block.active)
            assert len(set(block.active.tolist())) == block.count
            assert block.active.max() < 20
            assert np.all(np.diff(block.active) > 0)  # sorted

    def test_epoch_length(self):
        proc = PopulationProcess(FixedPopulation(3), pool_size=5, seed=2)
        epoch = proc.epoch(50)
        assert len(epoch) == 50
        assert all(b.count == 3 for b in epoch)

    def test_seed_reproducibility(self):
        a = PopulationProcess(GaussianPopulation(5, 2), 20, seed=9)
        b = PopulationProcess(GaussianPopulation(5, 2), 20, seed=9)
        for _ in range(20):
            ba, bb = a.next_block(), b.next_block()
            assert ba.count == bb.count
            assert np.array_equal(ba.active, bb.active)

    def test_pool_too_small_rejected(self):
        model = GaussianPopulation(10, 3)
        with pytest.raises(ConfigurationError):
            PopulationProcess(model, pool_size=5)

    def test_epoch_validation(self):
        proc = PopulationProcess(FixedPopulation(3), pool_size=5)
        with pytest.raises(ConfigurationError):
            proc.epoch(0)
