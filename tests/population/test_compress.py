"""Quantile budget compression: bucket invariants and identity paths.

The type-space solver's error certificate leans on exactly the
properties pinned here — contiguous rank buckets, representatives
inside [lo, hi], head-counts preserved by the weights — so these tests
are load-bearing for :mod:`repro.kernels.typespace`, not just for the
bucketing arithmetic.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.population import CompressedPopulation, compress_budgets


def _draw(n, seed=7):
    rng = np.random.default_rng(seed)
    return 100.0 * rng.lognormal(mean=0.0, sigma=0.6, size=n)


class TestIdentityPath:
    def test_k_equal_n_is_identity(self):
        budgets = _draw(32)
        comp = compress_budgets(budgets, 32)
        assert comp.is_identity and comp.is_exact
        assert comp.k == comp.n == 32
        assert np.array_equal(comp.budgets, budgets)
        assert np.array_equal(comp.lo, budgets)
        assert np.array_equal(comp.hi, budgets)
        assert np.array_equal(comp.weights, np.ones(32))
        assert comp.max_width == 0.0

    def test_k_above_n_is_identity(self):
        budgets = _draw(16)
        comp = compress_budgets(budgets, 1000)
        assert comp.is_identity
        assert comp.k == 16

    def test_identity_expand_roundtrip(self):
        budgets = _draw(16)
        comp = compress_budgets(budgets, 16)
        values = np.arange(16, dtype=float)
        assert np.array_equal(comp.expand(values), values)

    def test_uniform_budgets_are_exact_at_any_k(self):
        budgets = np.full(64, 50.0)
        comp = compress_budgets(budgets, 4)
        assert not comp.is_identity
        assert comp.is_exact
        assert comp.max_width == 0.0
        assert np.all(comp.budgets == 50.0)


class TestBucketInvariants:
    @pytest.mark.parametrize("n,k", [(64, 4), (100, 7), (257, 16),
                                     (512, 512 - 1)])
    def test_partition_and_bounds(self, n, k):
        budgets = _draw(n, seed=n + k)
        comp = compress_budgets(budgets, k)
        assert comp.k == k and comp.n == n
        # Weights are the head-counts of a partition of the miners.
        assert float(np.sum(comp.weights)) == float(n)
        counts = np.bincount(comp.index, minlength=k).astype(float)
        assert np.array_equal(counts, comp.weights)
        # Near-equal head-counts (quantile buckets differ by <= 1).
        assert counts.max() - counts.min() <= 1.0
        # Representatives sit inside their bucket's true extremes, and
        # every miner's true budget sits inside its bucket's range.
        assert np.all(comp.lo <= comp.budgets)
        assert np.all(comp.budgets <= comp.hi)
        assert np.all(comp.lo[comp.index] <= budgets + 1e-12)
        assert np.all(budgets <= comp.hi[comp.index] + 1e-12)
        # Buckets are ordered ranges of the sorted budgets.
        assert np.all(np.diff(comp.budgets) >= 0.0)
        assert np.all(comp.hi[:-1] <= comp.lo[1:] + 1e-12)

    def test_deterministic(self):
        budgets = _draw(128)
        a = compress_budgets(budgets, 9)
        b = compress_budgets(budgets, 9)
        assert np.array_equal(a.budgets, b.budgets)
        assert np.array_equal(a.index, b.index)
        assert np.array_equal(a.weights, b.weights)

    def test_single_bucket_is_population_mean(self):
        budgets = _draw(50)
        comp = compress_budgets(budgets, 1)
        assert comp.k == 1
        assert comp.budgets[0] == pytest.approx(float(np.mean(budgets)))
        assert comp.lo[0] == float(np.min(budgets))
        assert comp.hi[0] == float(np.max(budgets))
        assert comp.weights[0] == 50.0

    def test_expand_broadcasts_by_type(self):
        budgets = np.array([1.0, 10.0, 2.0, 20.0])
        comp = compress_budgets(budgets, 2)
        out = comp.expand(np.array([100.0, 200.0]))
        # Miners 0 and 2 (small budgets) share type 0; 1 and 3 type 1.
        assert np.array_equal(out, np.array([100.0, 200.0, 100.0,
                                             200.0]))


class TestValidation:
    def test_rejects_bad_budgets(self):
        with pytest.raises(ConfigurationError):
            compress_budgets(np.array([]), 2)
        with pytest.raises(ConfigurationError):
            compress_budgets(np.array([[1.0, 2.0]]), 1)
        with pytest.raises(ConfigurationError):
            compress_budgets(np.array([1.0, -2.0]), 1)
        with pytest.raises(ConfigurationError):
            compress_budgets(np.array([1.0, np.inf]), 1)

    def test_rejects_bad_n_types(self):
        with pytest.raises(ConfigurationError):
            compress_budgets(np.array([1.0, 2.0]), 0)

    def test_expand_rejects_wrong_shape(self):
        comp = compress_budgets(_draw(8), 2)
        with pytest.raises(ConfigurationError):
            comp.expand(np.zeros(3))

    def test_post_init_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            CompressedPopulation(budgets=np.array([5.0]),
                                 lo=np.array([6.0]),
                                 hi=np.array([7.0]),
                                 weights=np.array([1.0]),
                                 index=np.zeros(1, dtype=np.intp))
