"""Sweep harness."""

import pytest

from repro.analysis import sweep


class TestSweep:
    def test_basic(self):
        table = sweep("T", "x", [1, 2, 3],
                      lambda x: {"square": x * x, "double": 2 * x})
        assert table.columns == ["x", "square", "double"]
        assert table.column("square") == [1, 4, 9]

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep("T", "x", [], lambda x: {"y": x})

    def test_inconsistent_metrics_rejected(self):
        def evaluate(x):
            return {"a": 1} if x == 1 else {"b": 2}

        with pytest.raises(ValueError):
            sweep("T", "x", [1, 2], evaluate)

    def test_notes_forwarded(self):
        table = sweep("T", "x", [1], lambda x: {"y": x}, notes="n")
        assert table.notes == "n"
