"""ResultTable container and rendering."""

import pytest

from repro.analysis import ResultTable, render


@pytest.fixture
def table():
    t = ResultTable(title="T", columns=["x", "y"], notes="hello")
    t.add_row(1.0, 2.0)
    t.add_row(2.0, 4.0)
    t.add_row(3.0, 6.0)
    return t


class TestResultTable:
    def test_add_row_checks_arity(self, table):
        with pytest.raises(ValueError):
            table.add_row(1.0)

    def test_column_extraction(self, table):
        assert table.column("y") == [2.0, 4.0, 6.0]

    def test_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column("z")

    def test_monotone_checks(self, table):
        assert table.assert_monotone("y", increasing=True, strict=True)
        assert not table.assert_monotone("y", increasing=False,
                                         strict=True)

    def test_monotone_with_plateau(self):
        t = ResultTable("T", ["x"])
        t.add_row(1.0)
        t.add_row(1.0)
        assert t.assert_monotone("x", increasing=True)
        assert not t.assert_monotone("x", increasing=True, strict=True)

    def test_render_contains_everything(self, table):
        text = render(table)
        assert "T" in text
        assert "x" in text and "y" in text
        assert "hello" in text
        assert "6.0000" in text

    def test_render_strings_and_bools(self):
        t = ResultTable("T", ["name", "flag", "v"])
        t.add_row("mixed", True, 1e-9)
        text = str(t)
        assert "mixed" in text
        assert "True" in text
        assert "e-09" in text

    def test_render_large_and_zero(self):
        t = ResultTable("T", ["v"])
        t.add_row(0)
        t.add_row(1234567.0)
        text = str(t)
        assert "0" in text
        assert "e+06" in text


class TestSparkline:
    def test_docstring_example(self):
        from repro.analysis import sparkline
        assert sparkline([1, 2, 4, 8, 4, 2, 1]) == "▁▂▄█▄▂▁"

    def test_constant_series(self):
        from repro.analysis import sparkline
        out = sparkline([3.0, 3.0, 3.0])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_empty(self):
        from repro.analysis import sparkline
        assert sparkline([]) == ""

    def test_monotone_series_monotone_blocks(self):
        from repro.analysis import sparkline
        out = sparkline(range(8))
        assert list(out) == sorted(out)
