"""Golden-file regression: deterministic experiments must reproduce the
archived results exactly (up to solver tolerance).

The golden files under ``benchmarks/golden/`` were produced by the same
code at a known-good state; any numerical drift in the solvers shows up
here before it shows up in EXPERIMENTS.md. Regenerate deliberately with::

    python -c "from repro.analysis import ...; from repro.analysis.reporting import save; save(fig4_price_sweep(), 'benchmarks/golden/fig4.json')"
"""

from pathlib import Path

import pytest

from repro.analysis import (fig3_population, fig4_price_sweep,
                            fig5_delay_sweep, fig6_capacity_sweep,
                            fig7_budget_sweep, table2_closed_forms,
                            welfare_observations)
from repro.analysis.reporting import compare, load

GOLDEN_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "golden"

CASES = [
    ("fig3", fig3_population, 1e-6),
    ("fig4", fig4_price_sweep, 1e-5),
    ("fig5", fig5_delay_sweep, 1e-5),
    ("fig6", fig6_capacity_sweep, 1e-4),
    ("fig7", fig7_budget_sweep, 1e-5),
    ("welfare", welfare_observations, 1e-5),
    ("table2", table2_closed_forms, 5e-3),
]


@pytest.mark.parametrize("name,runner,rel_tol", CASES,
                         ids=[c[0] for c in CASES])
def test_golden(name, runner, rel_tol):
    golden_path = GOLDEN_DIR / f"{name}.json"
    assert golden_path.exists(), f"golden file missing: {golden_path}"
    expected = load(golden_path)
    actual = runner()
    mismatches = compare(actual, expected, rel_tol=rel_tol)
    assert mismatches == [], (
        f"{name} drifted from golden: first mismatches "
        f"{mismatches[:5]}")
