"""Sensitivity/elasticity analysis against exact closed-form values."""

import pytest

from repro.analysis import elasticity, equilibrium_elasticities
from repro.core import EdgeMode, Prices, homogeneous
from repro.exceptions import ConfigurationError


class TestElasticityHelper:
    def test_power_law_exact(self):
        # y = theta^3 has elasticity 3 everywhere.
        assert elasticity(lambda t: t ** 3, 2.0) == pytest.approx(
            3.0, abs=1e-6)

    def test_constant_has_zero_elasticity(self):
        assert elasticity(lambda t: 5.0, 1.7) == pytest.approx(0.0,
                                                               abs=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            elasticity(lambda t: t, 0.0)
        with pytest.raises(ConfigurationError):
            elasticity(lambda t: 0.0, 1.0)


class TestEquilibriumElasticities:
    def test_connected_interior_closed_forms(self):
        """In the interior regime: e* = kβh/(P_e-P_c), total = ka/P_c, so
        eps_E(P_e) = -P_e/(P_e-P_c) = -2 and eps_S(P_c) = -1 exactly."""
        params = homogeneous(5, 10000.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        table = equilibrium_elasticities(params, Prices(2.0, 1.0))
        rows = {r[0]: r[1:] for r in table.rows}
        assert rows["P_e"][0] == pytest.approx(-2.0, abs=1e-3)
        assert rows["P_c"][0] == pytest.approx(1.0, abs=1e-3)
        assert rows["P_c"][2] == pytest.approx(-1.0, abs=1e-3)
        assert rows["R"][2] == pytest.approx(1.0, abs=1e-3)

    def test_budget_binding_reward_elasticity_zero(self):
        """With binding budgets the aggregates depend on B, not R."""
        params = homogeneous(5, 100.0, reward=1000.0, fork_rate=0.2, h=0.8)
        table = equilibrium_elasticities(params, Prices(2.0, 1.0))
        rows = {r[0]: r[1:] for r in table.rows}
        assert rows["R"][0] == pytest.approx(0.0, abs=1e-6)
        assert rows["R"][2] == pytest.approx(0.0, abs=1e-6)

    def test_standalone_capacity_elasticity(self):
        """With the capacity binding, E* = E_max exactly: eps = 1."""
        params = homogeneous(5, 10000.0, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=80.0)
        table = equilibrium_elasticities(params, Prices(2.0, 1.0))
        rows = {r[0]: r[1:] for r in table.rows}
        assert rows["E_max"][0] == pytest.approx(1.0, abs=1e-3)
        # Edge demand pinned by capacity: insensitive to P_e locally.
        assert rows["P_e"][0] == pytest.approx(0.0, abs=1e-3)

    def test_h_row_only_when_meaningful(self):
        capped = homogeneous(5, 10000.0, reward=1000.0, fork_rate=0.2,
                             h=1.0)
        table = equilibrium_elasticities(capped, Prices(2.0, 1.0))
        names = [r[0] for r in table.rows]
        assert "h" not in names  # h=1 cannot be perturbed upward
