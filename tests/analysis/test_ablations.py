"""Ablation studies (fast configurations)."""

import pytest

from repro.analysis import (ablation_dynamic_weights, ablation_gnep_solvers,
                            ablation_transfer_semantics)


class TestGNEPSolvers:
    def test_solvers_agree(self):
        table = ablation_gnep_solvers(e_max_values=[80.0])
        row = table.rows[0]
        cols = {c: row[i] for i, c in enumerate(table.columns)}
        assert cols["E_decomp"] == pytest.approx(cols["E_extragrad"],
                                                 abs=1e-3)
        assert cols["max_profile_diff"] < 1e-3
        assert cols["nu_decomp"] == pytest.approx(cols["nu_extragrad"],
                                                  abs=1e-3)

    def test_decomposition_faster(self):
        table = ablation_gnep_solvers(e_max_values=[80.0])
        row = table.rows[0]
        cols = {c: row[i] for i, c in enumerate(table.columns)}
        assert cols["t_decomp_s"] < cols["t_extragrad_s"]


class TestDynamicWeights:
    def test_all_models_reported(self):
        table = ablation_dynamic_weights()
        names = [r[0] for r in table.rows]
        assert names == ["capacity", "service", "paper", "h"]
        assert all(r[-1] for r in table.rows)  # all converged


class TestTransferSemantics:
    def test_marginal_matches_model(self):
        table = ablation_transfer_semantics(rounds=60000)
        rows = {r[0]: r for r in table.rows}
        assert rows["marginal"][3] < 0.01     # |gap| ~ sampling error
        # The independent joint process overshoots Eq. (9) (Jensen).
        assert rows["independent"][1] > rows["independent"][2]
