"""Result serialization and regression comparison."""

import pytest

from repro.analysis import ResultTable, compare, from_json, load, save, \
    to_csv, to_json
from repro.exceptions import ConfigurationError


@pytest.fixture
def table():
    t = ResultTable(title="T", columns=["name", "x", "ok"],
                    notes="hello")
    t.add_row("a", 1.5, True)
    t.add_row("b", 2.5e-7, False)
    return t


class TestJsonRoundTrip:
    def test_lossless(self, table):
        back = from_json(to_json(table))
        assert back.title == table.title
        assert back.columns == table.columns
        assert back.notes == table.notes
        assert [list(r) for r in back.rows] == \
            [list(r) for r in table.rows]

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            from_json('{"title": "x"}')


class TestCsv:
    def test_contains_header_and_rows(self, table):
        text = to_csv(table)
        assert "# T" in text
        assert "name,x,ok" in text
        assert "a,1.5,True" in text


class TestFiles:
    def test_save_load_json(self, table, tmp_path):
        path = save(table, tmp_path / "out.json")
        back = load(path)
        assert back.title == "T"

    def test_save_csv(self, table, tmp_path):
        path = save(table, tmp_path / "out.csv")
        assert path.read_text().startswith("# T")

    def test_unknown_suffix_rejected(self, table, tmp_path):
        with pytest.raises(ConfigurationError):
            save(table, tmp_path / "out.xlsx")

    def test_load_csv_rejected(self, table, tmp_path):
        path = save(table, tmp_path / "out.csv")
        with pytest.raises(ConfigurationError):
            load(path)


class TestCompare:
    def test_identical_tables_match(self, table):
        assert compare(table, from_json(to_json(table))) == []

    def test_numeric_tolerance(self, table):
        other = from_json(to_json(table))
        other.rows[0] = ("a", 1.5 * (1 + 1e-9), True)
        assert compare(table, other, rel_tol=1e-6) == []
        other.rows[0] = ("a", 1.6, True)
        diffs = compare(table, other, rel_tol=1e-6)
        assert diffs and diffs[0][:2] == (0, 1)

    def test_non_numeric_exact(self, table):
        other = from_json(to_json(table))
        other.rows[1] = ("B", 2.5e-7, False)
        assert len(compare(table, other)) == 1

    def test_structural_mismatch_raises(self, table):
        other = ResultTable(title="T", columns=["different"])
        with pytest.raises(ConfigurationError):
            compare(table, other)

    def test_row_count_mismatch_raises(self, table):
        other = from_json(to_json(table))
        other.rows.append(("c", 1.0, True))
        with pytest.raises(ConfigurationError):
            compare(table, other)


class TestCliOutput:
    def test_cli_writes_json(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "fig3.json"
        assert main(["fig3", "--output", str(out), "--quiet"]) == 0
        assert out.exists()
        back = load(out)
        assert "Fig. 3" in back.title

    def test_cli_rejects_bad_suffix(self, tmp_path):
        from repro.cli import main
        assert main(["fig3", "--output",
                     str(tmp_path / "x.xlsx"), "--quiet"]) == 2

    def test_cli_all_rejects_output(self):
        from repro.cli import main
        assert main(["all", "--output", "x.json"]) == 2
