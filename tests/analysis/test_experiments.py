"""Experiment harness: fast shape checks for each paper artifact.

Heavier experiments run with reduced point counts here; the benchmarks run
the full versions.
"""

import numpy as np
import pytest

from repro.analysis import (DEFAULTS, PaperSetup, fig3_population,
                            fig4_price_sweep, fig5_delay_sweep,
                            fig6_capacity_sweep, fig6_csp_price_crossover,
                            fig7_budget_sweep, fig9_variance_sweep,
                            table2_closed_forms, welfare_observations)


class TestFig3:
    def test_pmf_matches_samples(self):
        table = fig3_population(samples=30000)
        pmf = np.array(table.column("pmf"))
        emp = np.array(table.column("empirical"))
        assert np.max(np.abs(pmf - emp)) < 0.015


class TestFig4:
    def test_edge_demand_increases_with_cloud_price(self):
        table = fig4_price_sweep(p_c_values=[0.6, 0.9, 1.2, 1.5])
        assert table.assert_monotone("E_total", increasing=True,
                                     strict=True)
        assert table.assert_monotone("esp_revenue", increasing=True,
                                     strict=True)


class TestFig5:
    def test_cloud_side_shrinks_with_beta(self):
        table = fig5_delay_sweep(betas=[0.1, 0.2, 0.3])
        assert table.assert_monotone("C_total", increasing=False,
                                     strict=True)
        assert table.assert_monotone("csp_revenue", increasing=False,
                                     strict=True)

    def test_total_sp_revenue_pinned_at_budgets(self):
        """Fig. 5(c): total SP revenue ~ constant (= aggregate budget)."""
        table = fig5_delay_sweep(betas=[0.1, 0.2, 0.3])
        totals = np.array(table.column("total_sp_revenue"))
        assert np.allclose(totals, 5 * 200.0, rtol=1e-3)


class TestFig6:
    def test_edge_requests_grow_with_capacity(self):
        table = fig6_capacity_sweep(e_max_values=[20, 60, 100, 160])
        assert table.assert_monotone("E_total", increasing=True)
        # Saturation: at huge capacity, E equals unconstrained demand.
        assert table.rows[-1][1] == pytest.approx(160.0, rel=1e-4)

    def test_standalone_exceeds_connected(self):
        # Capacity large enough that standalone demand is unconstrained:
        # the h<1 transfer risk is then the only difference between modes.
        table = fig6_capacity_sweep(e_max_values=[400])
        e_sa = table.column("E_total")[0]
        e_conn = table.column("connected_E_total")[0]
        assert e_sa > e_conn

    def test_csp_price_crossover_orders_by_delay(self):
        table = fig6_csp_price_crossover(p_e_values=[2.0, 4.0],
                                         betas=(0.1, 0.3))
        # At high P_e the longer delay forces the lower CSP price.
        last = table.rows[-1]
        assert last[1] > last[2]  # p_c*(β=0.1) > p_c*(β=0.3)


class TestFig7:
    def test_requests_and_utility_grow_with_budget(self):
        table = fig7_budget_sweep(budgets=[20, 80, 140, 200],
                                  betas=(0.2,))
        assert table.assert_monotone("e1_beta_0.2", increasing=True)
        assert table.assert_monotone("U1_beta_0.2", increasing=True)

    def test_total_requests_insensitive_to_delay(self):
        table = fig7_budget_sweep(budgets=[100], betas=(0.1, 0.2))
        r_low = table.column("r1_total_beta_0.1")[0]
        r_high = table.column("r1_total_beta_0.2")[0]
        assert r_low == pytest.approx(r_high, rel=0.15)


class TestFig9:
    def test_variance_sweep_shape(self):
        table = fig9_variance_sweep(sigmas=[1.0, 2.5])
        model = table.column("model_e")
        assert model[-1] > model[0]


class TestTable2:
    def test_closed_forms_track_numeric(self):
        table = table2_closed_forms()
        rows = {r[0]: r[1:] for r in table.rows}
        # Connected closed form vs numeric: tight agreement.
        assert rows["P_e*"][0] == pytest.approx(rows["P_e*"][1], rel=0.01)
        # Standalone: CSP price matches; ESP shades slightly below the
        # clearing closed form (documented).
        assert rows["P_c*"][2] == pytest.approx(rows["P_c*"][3], rel=0.02)
        assert rows["P_e*"][3] <= rows["P_e*"][2] * 1.001
        # Standalone ESP prices above connected (paper's conclusion).
        assert rows["P_e*"][2] > rows["P_e*"][0]
        assert rows["V_e*"][2] > rows["V_e*"][0]


class TestWelfare:
    def test_welfare_bounded_then_saturates(self):
        table = welfare_observations(budgets=[20, 100, 400, 1600])
        rev = table.column("total_sp_revenue")
        agg = table.column("aggregate_budget")
        binding = table.column("budget_binding")
        assert binding[0] and not binding[-1]
        # While binding, welfare == aggregate budget.
        assert rev[0] == pytest.approx(agg[0], rel=1e-3)
        # Once slack, welfare stops growing with budget.
        assert rev[-1] == pytest.approx(rev[-2], rel=1e-3)


class TestPaperSetup:
    def test_defaults_satisfy_mixed_condition(self):
        params = DEFAULTS.connected()
        assert DEFAULTS.p_c < params.mixed_price_bound(DEFAULTS.p_e)

    def test_custom_setup(self):
        setup = PaperSetup(n=4, budget=100.0)
        assert setup.connected().n == 4
        assert setup.standalone().e_max == 80.0
