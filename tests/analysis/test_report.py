"""Markdown report generation."""

import pytest

from repro.analysis import ResultTable, build_report, render_markdown
from repro.exceptions import ConfigurationError


@pytest.fixture
def table():
    t = ResultTable(title="Demo", columns=["x", "y", "label"],
                    notes="a caption")
    t.add_row(1, 2.0, "a")
    t.add_row(2, 4.0, "b")
    t.add_row(3, 8.0, "c")
    return t


class TestRenderMarkdown:
    def test_contains_table_and_caption(self, table):
        md = render_markdown(table)
        assert "## Demo" in md
        assert "| x | y | label |" in md
        assert "| 3 | 8.0000 | c |" in md
        assert "> a caption" in md

    def test_sparkline_for_numeric_columns_only(self, table):
        md = render_markdown(table)
        assert "`y`" in md
        assert "`label`" not in md

    def test_heading_level(self, table):
        md = render_markdown(table, heading_level=3)
        assert md.startswith("### Demo")


class TestBuildReport:
    def test_runs_selected_experiments(self, table, tmp_path):
        experiments = {"one": lambda: table, "two": lambda: table}
        out = tmp_path / "r.md"
        doc = build_report(experiments, path=out, ids=["one"])
        assert out.read_text() == doc
        assert "# repro-mining report" in doc
        assert doc.count("## Demo") == 1

    def test_default_runs_all_sorted(self, table):
        calls = []

        def make(name):
            def run():
                calls.append(name)
                return table
            return run

        build_report({"b": make("b"), "a": make("a")})
        assert calls == ["a", "b"]

    def test_unknown_ids_rejected(self, table):
        with pytest.raises(ConfigurationError):
            build_report({"a": lambda: table}, ids=["nope"])


class TestCliReport:
    def test_cli_report_writes_file(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "report.md"
        assert main(["report", "--ids", "fig3", "--quiet",
                     "--output", str(out)]) == 0
        text = out.read_text()
        assert "Fig. 3" in text
        assert "trends:" in text

    def test_cli_report_bad_ids(self, capsys):
        from repro.cli import main
        assert main(["report", "--ids", "bogus", "--quiet"]) == 2


class TestRenderTelemetry:
    def _registry(self):
        from repro.telemetry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("solves_total", "Completed solves",
                    labels={"solver": "adaptive"}).inc(3)
        reg.gauge("cache_entries").set(12.0)
        hist = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return reg

    def test_scalars_and_histograms_tabulated(self):
        from repro.analysis.report import render_telemetry

        text = render_telemetry(self._registry())
        assert text.startswith("## Telemetry")
        assert "| metric | kind | value |" in text
        assert "`solves_total{solver=adaptive}`" in text
        assert "| histogram | count | mean | p50 | p95 | p99 |" in text
        assert "`latency_seconds`" in text

    def test_accepts_snapshot_dict(self):
        from repro.analysis.report import render_telemetry

        live = render_telemetry(self._registry())
        persisted = render_telemetry(self._registry().snapshot())
        assert live == persisted

    def test_empty_registry_notes_no_metrics(self):
        from repro.analysis.report import render_telemetry
        from repro.telemetry import MetricsRegistry

        text = render_telemetry(MetricsRegistry(), heading_level=3,
                                title="Empty")
        assert text.startswith("### Empty")
        assert "(no metrics recorded)" in text
