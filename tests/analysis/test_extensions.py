"""Extension experiments (EXT1-EXT4)."""

import numpy as np
import pytest

from repro.analysis import (ext1_rent_dissipation, ext2_fictitious_play,
                            ext3_difficulty_retargeting, ext4_elasticities)


class TestExt1:
    def test_accounting_identity_holds(self):
        table = ext1_rent_dissipation(rewards=[1000.0, 2000.0])
        for r in table.column("accounting_residual"):
            assert abs(r) < 1e-6

    def test_dissipation_falls_with_reward_once_interior(self):
        table = ext1_rent_dissipation(rewards=[2000.0, 4000.0])
        d = table.column("dissipation")
        assert d[1] < d[0]
        assert all(0.0 < x < 1.0 for x in d)


class TestExt2:
    def test_fictitious_play_gap_shrinks(self):
        table = ext2_fictitious_play()
        gaps = table.column("profile_gap")
        assert gaps[-1] < 1e-3
        assert gaps[0] > gaps[-1]

    def test_ni_residual_certifies(self):
        table = ext2_fictitious_play()
        ni = table.column("ni_residual")
        assert ni[-1] < 1e-6


class TestExt3:
    def test_interval_returns_to_target(self):
        table = ext3_difficulty_retargeting()
        intervals = table.column("mean_interval_s")
        # Average of the last three epochs of each demand segment is near
        # the 600 s target.
        assert np.mean(intervals[3:6]) == pytest.approx(600.0, rel=0.25)
        assert np.mean(intervals[9:12]) == pytest.approx(600.0, rel=0.25)
        assert np.mean(intervals[15:18]) == pytest.approx(600.0, rel=0.25)

    def test_difficulty_follows_demand(self):
        table = ext3_difficulty_retargeting()
        units = table.column("total_units")
        diff = table.column("difficulty")
        # Demand doubled from segment 1 to segment 2 => difficulty up.
        assert units[7] > units[3]
        assert diff[11] > diff[3]


class TestExt4:
    def test_both_modes_reported(self):
        table = ext4_elasticities()
        modes = {r[0] for r in table.rows}
        assert modes == {"connected", "standalone"}

    def test_signs_economically_sane(self):
        table = ext4_elasticities()
        for row in table.rows:
            mode, param, eps_e = row[0], row[1], row[2]
            if mode == "connected" and param == "P_e":
                assert eps_e < 0  # own-price elasticity negative
            if mode == "connected" and param == "P_c":
                assert eps_e > 0  # cross-price elasticity positive


class TestExt5:
    def test_calibration_chain_monotone(self):
        from repro.analysis import ext5_topology_calibration
        table = ext5_topology_calibration(block_sizes=[1e5, 1e6, 1.6e7])
        assert table.assert_monotone("beta", increasing=True, strict=True)
        assert table.assert_monotone("edge_share", increasing=True,
                                     strict=True)
        assert table.assert_monotone("C_total", increasing=False,
                                     strict=True)


class TestExt6:
    def test_prices_fall_with_entry(self):
        from repro.analysis import ext6_edge_competition
        table = ext6_edge_competition(counts=[1, 2, 4])
        assert table.assert_monotone("scarce_price", increasing=False,
                                     strict=True)
        assert table.assert_monotone("scarce_total_units",
                                     increasing=True, strict=True)
        assert all(table.column("verified"))

    def test_ample_capacity_bertrand_collapse(self):
        from repro.analysis import ext6_edge_competition
        table = ext6_edge_competition(counts=[1, 2])
        ample_profit = table.column("ample_industry_profit")
        assert ample_profit[0] > 0
        assert ample_profit[1] == 0


class TestExt7:
    def test_interior_optimum(self):
        from repro.analysis import ext7_optimal_block_size
        table = ext7_optimal_block_size(
            block_sizes=[1e5, 6e5, 4e6, 3.2e7])
        rev = table.column("expected_revenue")
        best = rev.index(max(rev))
        assert 0 < best < len(rev) - 1  # interior
        assert table.assert_monotone("beta", increasing=True, strict=True)
        assert table.assert_monotone("mean_fees", increasing=True)


class TestExt8:
    def test_risk_shrinks_solo_mining(self):
        from repro.analysis import ext8_risk_aversion
        table = ext8_risk_aversion(risk_levels=[0.0, 0.002, 0.01])
        assert table.assert_monotone("solo_demand", increasing=False,
                                     strict=True)
        assert table.assert_monotone("solo_active", increasing=False)

    def test_pool_beats_solo_under_risk(self):
        from repro.analysis import ext8_risk_aversion
        table = ext8_risk_aversion(risk_levels=[0.002])
        row = table.rows[0]
        cols = {c: row[i] for i, c in enumerate(table.columns)}
        assert cols["pool_demand"] > cols["solo_demand"]


class TestExt9:
    def test_value_of_information_structure(self):
        from repro.analysis import ext9_private_budgets
        table = ext9_private_budgets()
        rows = {r[0]: r for r in table.rows}
        cols = table.columns
        voi = cols.index("value_of_information")
        bne_e = cols.index("bne_e")
        fi_e = cols.index("fullinfo_e")
        # Budget-bound types spend everything either way: their requests
        # barely move with information.
        assert abs(rows[50.0][bne_e] - rows[50.0][fi_e]) < 0.01
        # The interior (rich) type tailors its play to realized rivals:
        # information is strictly valuable to it.
        assert rows[400.0][voi] > 1.0
        assert rows[400.0][voi] > rows[50.0][voi]
