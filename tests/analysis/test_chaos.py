"""Chaos sweep: the robustness artifact behaves like a paper figure."""

import pytest

from repro.analysis import chaos_outage_sweep, outage_plan
from repro.resilience import FaultInjector


class TestOutagePlan:
    def test_zero_rate_has_no_outage(self):
        plan = outage_plan(0.0, 20, transient_rate=0.0, spike_factor=1.0)
        assert plan.faults == ()

    def test_full_rate_is_total_outage(self):
        plan = outage_plan(1.0, 20, transient_rate=0.0, spike_factor=1.0)
        assert plan.esp_down_for_all(20)

    def test_partial_rate_covers_the_requested_fraction(self):
        plan = outage_plan(0.4, 20, transient_rate=0.0, spike_factor=1.0,
                           seed=5)
        injector = FaultInjector(plan)
        dark = 0
        for _ in range(20):
            if injector.esp_down():
                dark += 1
            injector.advance_round()
        assert dark == 8

    def test_deterministic_in_seed(self):
        assert outage_plan(0.3, 20, seed=2) == outage_plan(0.3, 20, seed=2)
        assert outage_plan(0.3, 20, seed=2) != outage_plan(0.3, 20, seed=3)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            outage_plan(1.5, 20)


class TestChaosSweep:
    def test_esp_revenue_decays_with_outage_rate(self):
        table = chaos_outage_sweep(outage_rates=[0.0, 0.5, 1.0],
                                   n_rounds=10, seed=0)
        assert table.assert_monotone("esp_revenue", increasing=False)
        esp = table.column("esp_revenue")
        assert esp[0] > 0.0
        assert esp[-1] == 0.0

    def test_every_row_completed_and_counted_faults(self):
        table = chaos_outage_sweep(outage_rates=[0.0, 1.0], n_rounds=10,
                                   seed=0)
        assert len(table.rows) == 2
        faults = table.column("faults_fired")
        assert faults[1] > faults[0]

    def test_reproducible(self):
        a = chaos_outage_sweep(outage_rates=[0.5], n_rounds=8, seed=4)
        b = chaos_outage_sweep(outage_rates=[0.5], n_rounds=8, seed=4)
        assert a.rows == b.rows
