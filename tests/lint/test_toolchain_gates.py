"""Availability-gated checks for the external toolchain gates.

The strict-typing and ruff gates are enforced in CI (see
``.github/workflows/ci.yml``); these tests run the same commands
locally *when the tools are installed* so a contributor with the dev
toolchain catches regressions before pushing.  Environments without
mypy/ruff (the minimal runtime image) skip them.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

# The whole tree is strict now -- no per-package carve-outs left.
STRICT_PACKAGES = ("src/repro",)


def run(cmd):
    return subprocess.run(cmd, cwd=REPO, capture_output=True,
                          text=True, timeout=600)


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed")
def test_mypy_strict_gate():
    proc = run([sys.executable, "-m", "mypy", "--strict",
                *STRICT_PACKAGES])
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed")
def test_ruff_gate():
    proc = run(["ruff", "check", "src", "tests", "examples",
                "benchmarks"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_config_present():
    text = (REPO / "pyproject.toml").read_text()
    assert "[tool.mypy]" in text
    assert "strict = true" in text


def test_py_typed_marker_ships():
    assert (REPO / "src/repro/py.typed").exists()
    assert 'repro = ["py.typed"]' in (REPO / "pyproject.toml").read_text()
