"""Reporter output: text rendering, statistics, and a golden JSON
snapshot pinned against ``tests/lint/golden_report.json``."""

import json
from pathlib import Path

from repro.lint import (ALL_RULES, lint_source, render_json,
                        render_text, summarize)

GOLDEN = Path(__file__).parent / "golden_report.json"

#: A deliberately multi-violation snippet with a stable virtual path so
#: the JSON document is fully deterministic.
SNIPPET = """\
def fraction(e, S, history=[]):
    if e == 0.25:
        return 0.0
    history.append(e / S)
    return history[-1]
"""
SNIPPET_PATH = "src/repro/core/snippet.py"


def snippet_findings():
    return lint_source(SNIPPET, path=SNIPPET_PATH)


def test_snippet_triggers_three_rules():
    assert [f.rule_id for f in snippet_findings()] == [
        "RPR005", "RPR002", "RPR003"]


def test_render_text_line_format():
    text = render_text(snippet_findings())
    lines = text.splitlines()
    assert len(lines) == 3
    assert lines[0].startswith(f"{SNIPPET_PATH}:1:")
    assert "RPR005" in lines[0]
    assert "[error]" in lines[0] or "[warning]" in lines[0]


def test_render_text_empty_says_no_findings():
    assert render_text([]) == "no findings"


def test_render_text_statistics_appends_counts():
    text = render_text(snippet_findings(), statistics=True)
    tail = text.splitlines()[-3:]
    assert tail == ["RPR002: 1", "RPR003: 1", "RPR005: 1"]


def test_summarize_counts():
    summary = summarize(snippet_findings())
    assert summary["total"] == 3
    assert summary["by_rule"] == {
        "RPR002": 1, "RPR003": 1, "RPR005": 1}
    assert set(summary["by_severity"]) <= {"error", "warning"}


def test_render_json_matches_golden_snapshot():
    document = json.loads(render_json(snippet_findings()))
    expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert document == expected


def test_render_json_schema_essentials():
    document = json.loads(render_json(snippet_findings()))
    assert document["version"] == 2
    assert len(document["findings"]) == 3
    assert len(document["rules"]) == len(ALL_RULES)
    for finding in document["findings"]:
        assert set(finding) == {"rule", "severity", "path", "line",
                                "col", "symbol", "message"}
        # Per-file findings carry no resolved symbol; the project
        # analyzer fills this field.
        assert finding["symbol"] == ""
    for rule in document["rules"]:
        assert set(rule) == {"id", "name", "severity", "description",
                             "rationale"}
        assert rule["rationale"]
