"""Engine behavior: suppression comments, syntax-error handling, file
discovery, and finding ordering."""

from pathlib import Path

from repro.lint import (Finding, lint_path, lint_paths, lint_source,
                        iter_python_files, parse_suppressions)

BAD_DIVISION = """\
def share(e, S):
    return e / S
"""

SUPPRESSED_DIVISION = """\
def share(e, S):
    return e / S  # repro: noqa[RPR003]
"""

BARE_NOQA_DIVISION = """\
def share(e, S):
    return e / S  # repro: noqa
"""

WRONG_CODE_DIVISION = """\
def share(e, S):
    return e / S  # repro: noqa[RPR001]
"""

WRONG_LINE_DIVISION = """\
def share(e, S):
    # repro: noqa[RPR003]
    return e / S
"""


def rule_ids(source: str) -> list:
    return [f.rule_id for f in lint_source(source, path="src/x.py")]


def test_unsuppressed_division_fires():
    assert "RPR003" in rule_ids(BAD_DIVISION)


def test_coded_noqa_suppresses_matching_rule():
    assert rule_ids(SUPPRESSED_DIVISION) == []


def test_bare_noqa_suppresses_every_rule():
    assert rule_ids(BARE_NOQA_DIVISION) == []


def test_noqa_with_other_code_does_not_suppress():
    assert "RPR003" in rule_ids(WRONG_CODE_DIVISION)


def test_noqa_must_sit_on_the_flagged_line():
    assert "RPR003" in rule_ids(WRONG_LINE_DIVISION)


def test_plain_noqa_comment_is_not_our_syntax():
    # Ruff/flake8-style ``# noqa`` without the ``repro:`` prefix must
    # not silence RPR rules.
    src = "def share(e, S):\n    return e / S  # noqa\n"
    assert "RPR003" in rule_ids(src)


def test_parse_suppressions_maps_lines_to_codes():
    sup = parse_suppressions([
        "x = 1",
        "y = 2  # repro: noqa",
        "z = 3  # repro: noqa[RPR001, RPR007]",
    ])
    assert sup == {2: frozenset(),
                   3: frozenset({"RPR001", "RPR007"})}


def test_syntax_error_becomes_rpr999_finding():
    findings = lint_source("def broken(:\n", path="src/broken.py")
    assert len(findings) == 1
    assert findings[0].rule_id == "RPR999"
    assert findings[0].severity == "error"
    assert "syntax error" in findings[0].message


def test_findings_sorted_by_location():
    src = ("def f(x, h=[]):\n"
           "    if x == 0.5:\n"
           "        return h\n")
    findings = lint_source(src, path="src/x.py")
    assert findings == sorted(findings, key=Finding.sort_key)
    assert [f.rule_id for f in findings] == ["RPR005", "RPR002"]


def test_finding_to_dict_round_trip():
    f = Finding(rule_id="RPR001", message="m", path="p.py", line=3,
                col=7, severity="warning")
    assert f.to_dict() == {
        "rule": "RPR001", "severity": "warning", "path": "p.py",
        "line": 3, "col": 7, "symbol": "", "message": "m"}


def test_iter_python_files_skips_hidden_and_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
    files = list(iter_python_files([tmp_path]))
    assert [f.name for f in files] == ["a.py"]


def test_lint_path_and_lint_paths_agree(tmp_path):
    target = tmp_path / "sample.py"
    target.write_text(BAD_DIVISION)
    assert ([f.rule_id for f in lint_path(target)]
            == [f.rule_id for f in lint_paths([tmp_path])]
            == ["RPR003"])


def test_fixture_directory_is_invisible_to_discovery():
    fixtures = Path(__file__).parent / ".fixtures"
    assert fixtures.is_dir()
    found = list(iter_python_files([Path(__file__).parent]))
    assert all(".fixtures" not in f.parts for f in found)
