"""The ``repro-mining lint`` subcommand: exit codes, formats,
selection flags, and the repository self-check."""

import json

import pytest

from repro.cli import lint_main, main

CLEAN = "def f(x):\n    return x + 1\n"
DIRTY = "def f(x, history=[]):\n    return history\n"


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


def test_clean_file_exits_zero(clean_file, capsys):
    assert lint_main([str(clean_file)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_seeded_violation_exits_one_with_rule_id(dirty_file, capsys):
    assert lint_main([str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "RPR005" in out
    assert str(dirty_file) in out


def test_main_routes_lint_subcommand(dirty_file):
    assert main(["lint", str(dirty_file)]) == 1


def test_json_format_is_parseable(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["summary"]["by_rule"] == {"RPR005": 1}


def test_select_limits_rules(dirty_file):
    assert lint_main([str(dirty_file), "--select", "RPR001"]) == 0
    assert lint_main([str(dirty_file), "--select", "RPR005"]) == 1


def test_ignore_skips_rules(dirty_file):
    assert lint_main([str(dirty_file), "--ignore", "RPR005"]) == 0


def test_unknown_rule_id_is_usage_error(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--select", "RPR999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "absent")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_prints_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR008"):
        assert rule_id in out


def test_output_flag_writes_report(dirty_file, tmp_path, capsys):
    report = tmp_path / "report.json"
    code = lint_main([str(dirty_file), "--format", "json",
                      "--output", str(report)])
    assert code == 1
    doc = json.loads(report.read_text())
    assert doc["summary"]["total"] == 1
    assert f"wrote {report}" in capsys.readouterr().err


def test_statistics_flag_appends_counts(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--statistics"]) == 1
    assert capsys.readouterr().out.rstrip().endswith("RPR005: 1")


def test_repository_self_check(capsys):
    """The acceptance gate: the repository's own tree lints clean."""
    assert lint_main(["src", "tests", "examples", "benchmarks"]) == 0
    assert "no findings" in capsys.readouterr().out
