"""The ``repro-mining lint`` subcommand: exit codes, formats,
selection flags, and the repository self-check."""

import json

import pytest

from repro.cli import lint_main, main

CLEAN = "def f(x):\n    return x + 1\n"
DIRTY = "def f(x, history=[]):\n    return history\n"


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


def test_clean_file_exits_zero(clean_file, capsys):
    assert lint_main([str(clean_file)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_seeded_violation_exits_one_with_rule_id(dirty_file, capsys):
    assert lint_main([str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "RPR005" in out
    assert str(dirty_file) in out


def test_main_routes_lint_subcommand(dirty_file):
    assert main(["lint", str(dirty_file)]) == 1


def test_json_format_is_parseable(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 2
    assert doc["summary"]["by_rule"] == {"RPR005": 1}


def test_select_limits_rules(dirty_file):
    assert lint_main([str(dirty_file), "--select", "RPR001"]) == 0
    assert lint_main([str(dirty_file), "--select", "RPR005"]) == 1


def test_ignore_skips_rules(dirty_file):
    assert lint_main([str(dirty_file), "--ignore", "RPR005"]) == 0


def test_unknown_rule_id_is_usage_error(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--select", "RPR999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "absent")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_prints_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR008"):
        assert rule_id in out


def test_output_flag_writes_report(dirty_file, tmp_path, capsys):
    report = tmp_path / "report.json"
    code = lint_main([str(dirty_file), "--format", "json",
                      "--output", str(report)])
    assert code == 1
    doc = json.loads(report.read_text())
    assert doc["summary"]["total"] == 1
    assert f"wrote {report}" in capsys.readouterr().err


def test_statistics_flag_appends_counts(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--statistics"]) == 1
    assert capsys.readouterr().out.rstrip().endswith("RPR005: 1")


def test_repository_self_check(capsys):
    """The acceptance gate: the repository's own tree lints clean."""
    assert lint_main(["src", "tests", "examples", "benchmarks"]) == 0
    assert "no findings" in capsys.readouterr().out


# -- whole-program analyzer (--project) ------------------------------

from pathlib import Path  # noqa: E402

FIXTURE_PKG = str(Path(__file__).parent / ".fixtures" / "project"
                  / "pkg")


def test_project_mode_exits_one_on_fixture(capsys):
    assert lint_main(["--project", FIXTURE_PKG]) == 1
    out = capsys.readouterr().out
    assert "RPR010" in out
    assert "[pkg.locks.Store.peek]" in out


def test_project_repository_self_check(capsys):
    """The acceptance gate: `lint --project src/repro` exits 0."""
    assert lint_main(["--project", "src/repro"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_project_json_format(capsys):
    assert lint_main(["--project", FIXTURE_PKG, "--format",
                      "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["mode"] == "project"
    assert doc["summary"]["total"] == 7
    assert {r["id"] for r in doc["rules"]} == {
        "RPR009", "RPR010", "RPR011", "RPR012", "RPR013"}


def test_project_select_limits_rules(capsys):
    assert lint_main(["--project", FIXTURE_PKG, "--select",
                      "RPR011"]) == 1
    out = capsys.readouterr().out
    assert "RPR011" in out and "RPR010" not in out


def test_project_rejects_per_file_only_rule_ids(capsys):
    assert lint_main(["--project", FIXTURE_PKG, "--select",
                      "RPR005"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_project_baseline_workflow(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    # Write the baseline from the current findings: exit 0.
    assert lint_main(["--project", FIXTURE_PKG, "--baseline",
                      str(baseline), "--write-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()
    # With the baseline applied, nothing gates any more.
    assert lint_main(["--project", FIXTURE_PKG, "--baseline",
                      str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "7 finding(s) suppressed" in out


def test_project_baseline_gates_only_regressions(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    doc = {"version": 1, "entries": []}
    baseline.write_text(json.dumps(doc))
    assert lint_main(["--project", FIXTURE_PKG, "--baseline",
                      str(baseline)]) == 1
    assert "RPR010" in capsys.readouterr().out
