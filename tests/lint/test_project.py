"""Whole-program analyzer: call-graph construction, lock-discipline
inference, the interprocedural rules (RPR010-RPR013 + transitive
RPR009) over the fixture mini-package, baseline semantics, the repo
self-check, and the two mutation checks from the acceptance criteria
(remove a ``with self._lock:`` / unseed a solver-reachable RNG in a
scratch copy and watch the exact expected rule fire)."""

import dataclasses
import json
import shutil
from pathlib import Path

import pytest

from repro.lint import (PROJECT_RULES, analyze_project, apply_baseline,
                        build_project, fingerprint,
                        infer_lock_discipline, load_baseline,
                        project_rule_catalog, render_project_json,
                        render_project_text, write_baseline)

HERE = Path(__file__).parent
FIXTURE_ROOT = HERE / ".fixtures" / "project"
FIXTURE_PKG = FIXTURE_ROOT / "pkg"
REPO_SRC = HERE.parents[1] / "src" / "repro"
GOLDEN = HERE / "golden_project_report.json"


@pytest.fixture(scope="module")
def index():
    return build_project([FIXTURE_PKG])


@pytest.fixture(scope="module")
def findings():
    return analyze_project([FIXTURE_PKG])


# -- symbol table and call graph ------------------------------------

def test_modules_discovered(index):
    assert {"pkg", "pkg.core", "pkg.api", "pkg.locks", "pkg.cycle",
            "pkg.service", "pkg.service.handlers"} <= set(
        index.modules)


def test_reexport_chasing(index):
    # pkg/__init__ re-exports solve_demand from pkg.core.
    assert index.symbols.resolve_dotted("pkg.solve_demand") == (
        "function", "pkg.core.solve_demand")


def test_call_graph_function_edges(index):
    callees = index.call_graph.callees("pkg.core.solve_demand")
    assert {"pkg.core.sample_noise", "pkg.core.perturb"} <= callees


def test_call_graph_cross_module_edges(index):
    callees = index.call_graph.callees("pkg.api.run_dropped")
    assert "pkg.core.solve_demand" in callees


def test_call_graph_typed_method_edges(index):
    # Left.bump -> Right.observe resolves through the `peer: "Right"`
    # attribute annotation, not by name matching.
    assert "pkg.cycle.Right.observe" in index.call_graph.callees(
        "pkg.cycle.Left.bump")


def test_reachability(index):
    reach = index.call_graph.reachable_from(["pkg.core.solve_demand"])
    assert "pkg.core.perturb" in reach
    assert "pkg.core.helper_unreachable" not in reach


def test_unresolved_calls_make_no_edges(index):
    # asyncio.sleep is outside the project: conservative no-edge.
    callees = index.call_graph.callees("pkg.service.handlers.handle")
    assert callees == {"pkg.service.handlers.prepare"}


# -- lock-discipline inference --------------------------------------

def test_guarded_attribute_inference(index):
    store = index.classes["pkg.locks.Store"]
    discipline = infer_lock_discipline(index, store)
    assert set(discipline.guarded) == {"size", "_items"}
    assert discipline.guarded["size"] == (2, 3)
    assert [(v.method.name, v.attr)
            for v in discipline.violations] == [("peek", "size")]


def test_held_methods_count_as_locked(index):
    clean = index.classes["pkg.locks.CleanStore"]
    discipline = infer_lock_discipline(index, clean)
    assert "_trim" in discipline.held_methods
    assert not discipline.violations


# -- rule triggers and clean cases ----------------------------------

EXPECTED = {
    ("RPR009", "pkg.service.handlers.handle"),
    ("RPR010", "pkg.locks.Store.peek"),
    ("RPR011", "pkg.cycle.Right.bump"),
    ("RPR012", "pkg.core.perturb"),
    ("RPR012", "pkg.core.solve_jittered"),
    ("RPR012", "pkg.core.solve_global"),
    ("RPR013", "pkg.api.run_dropped"),
}


def test_exact_finding_set(findings):
    assert {(f.rule_id, f.symbol) for f in findings} == EXPECTED


def test_clean_variants_stay_clean(findings):
    flagged = {f.symbol for f in findings}
    for symbol in ("pkg.api.run_forwarded", "pkg.api.run_threshold",
                   "pkg.service.handlers.handle_pure",
                   "pkg.core.helper_unreachable",
                   "pkg.core.solve_demand",
                   "pkg.locks.CleanStore.add",
                   "pkg.locks.CleanStore.get"):
        assert symbol not in flagged


def test_transitive_blocking_message_shows_path(findings):
    (finding,) = [f for f in findings if f.rule_id == "RPR009"]
    assert "prepare()" in finding.message
    assert ".read_text()" in finding.message


def test_noqa_suppresses_project_finding(tmp_path):
    scratch = tmp_path / "pkg"
    shutil.copytree(FIXTURE_PKG, scratch)
    locks = scratch / "locks.py"
    locks.write_text(locks.read_text().replace(
        "return self.size  # RPR010: guarded attribute, no lock",
        "return self.size  # repro: noqa[RPR010]"))
    symbols = {(f.rule_id, f.symbol)
               for f in analyze_project([scratch])}
    assert ("RPR010", "pkg.locks.Store.peek") not in symbols
    # The other findings are unaffected.
    assert ("RPR013", "pkg.api.run_dropped") in symbols


def test_rule_catalog_covers_project_rules():
    catalog = project_rule_catalog()
    assert [e["id"] for e in catalog] == sorted(
        r.id for r in PROJECT_RULES)
    for entry in catalog:
        assert entry["description"] and entry["rationale"]


# -- baseline semantics ---------------------------------------------

def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(tmp_path / "absent.json")
    assert len(baseline) == 0


def test_baseline_roundtrip_suppresses_everything(tmp_path, findings):
    path = tmp_path / "lint-baseline.json"
    write_baseline(findings, path)
    result = apply_baseline(findings, load_baseline(path))
    assert not result.new
    assert len(result.suppressed) == len(findings)
    assert not result.stale


def test_baseline_regression_gates(tmp_path, findings):
    path = tmp_path / "lint-baseline.json"
    write_baseline(findings[1:], path)
    result = apply_baseline(findings, load_baseline(path))
    assert result.new == [findings[0]]
    assert len(result.suppressed) == len(findings) - 1


def test_baseline_stale_entries_reported(tmp_path, findings):
    path = tmp_path / "lint-baseline.json"
    write_baseline(findings, path)
    result = apply_baseline(findings[1:], load_baseline(path))
    assert not result.new
    assert len(result.stale) == 1
    assert result.stale[0].key == fingerprint(findings[0])


def test_baseline_matching_ignores_line_numbers(tmp_path, findings):
    path = tmp_path / "lint-baseline.json"
    write_baseline(findings, path)
    shifted = [dataclasses.replace(f, line=f.line + 40)
               for f in findings]
    result = apply_baseline(shifted, load_baseline(path))
    assert not result.new and not result.stale


def test_write_baseline_preserves_justifications(tmp_path, findings):
    path = tmp_path / "lint-baseline.json"
    write_baseline(findings, path)
    doc = json.loads(path.read_text())
    doc["entries"][0]["justification"] = "accepted: see ADR-7"
    path.write_text(json.dumps(doc))
    previous = load_baseline(path)
    write_baseline(findings, path, previous=previous)
    rewritten = json.loads(path.read_text())
    kept = [e["justification"] for e in rewritten["entries"]]
    assert "accepted: see ADR-7" in kept


# -- reporters -------------------------------------------------------

def relativized(findings):
    return [dataclasses.replace(
        f, path=str(Path(f.path).relative_to(FIXTURE_ROOT)))
        for f in findings]


def test_project_text_report_carries_symbols(findings):
    text = render_project_text(relativized(findings))
    assert "[pkg.locks.Store.peek]" in text
    assert "pkg/locks.py:" in text


def test_project_json_matches_golden_snapshot(findings):
    document = json.loads(render_project_json(relativized(findings)))
    expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert document == expected


def test_project_json_schema_essentials(findings):
    document = json.loads(render_project_json(relativized(findings)))
    assert document["version"] == 2
    assert document["mode"] == "project"
    assert document["baseline"] == {"suppressed": 0, "stale": []}
    assert len(document["rules"]) == len(PROJECT_RULES)
    for finding in document["findings"]:
        assert set(finding) == {"rule", "severity", "path", "line",
                                "col", "symbol", "message"}
        assert finding["symbol"]


# -- repo self-check and mutation checks ----------------------------

def test_repository_self_check_zero_findings():
    findings = analyze_project([REPO_SRC])
    assert findings == [], render_project_text(findings)


def scratch_repro(tmp_path):
    scratch = tmp_path / "repro"
    shutil.copytree(REPO_SRC, scratch,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return scratch


def test_mutation_removed_lock_fires_rpr010(tmp_path):
    scratch = scratch_repro(tmp_path)
    cache = scratch / "serving" / "cache.py"
    text = cache.read_text()
    # Drop the lock from ScenarioCache.lookup only (keep indentation).
    start = text.index("def lookup")
    hole = text.index("with self._lock:", start)
    cache.write_text(text[:hole] + "if True:        "
                     + text[hole + len("with self._lock:"):])
    findings = analyze_project([scratch])
    assert findings, "removing the lock must produce findings"
    assert {f.rule_id for f in findings} == {"RPR010"}
    symbols = {f.symbol for f in findings}
    # lookup itself is flagged, and only ScenarioCache methods are
    # (helpers it calls lose their held-under-lock status too, which
    # is exactly what happens at runtime).
    assert "repro.serving.cache.ScenarioCache.lookup" in symbols
    assert all(".ScenarioCache." in s for s in symbols)


def test_mutation_unseeded_rng_fires_rpr012(tmp_path):
    scratch = scratch_repro(tmp_path)
    gnep = scratch / "core" / "gnep.py"
    probe = ("\n\ndef solve_probe_with_noise(x, seed=0):\n"
             "    from numpy.random import default_rng\n"
             "    rng = default_rng(seed)\n"
             "    return x + rng.random()\n")
    gnep.write_text(gnep.read_text() + probe)
    assert analyze_project([scratch]) == [], \
        "the seeded probe must not trigger anything"
    gnep.write_text(gnep.read_text().replace(
        "rng = default_rng(seed)", "rng = default_rng()"))
    findings = analyze_project([scratch])
    assert [(f.rule_id, f.symbol) for f in findings] == [
        ("RPR012", "repro.core.gnep.solve_probe_with_noise")]
