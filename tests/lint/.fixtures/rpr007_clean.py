"""Clean for RPR007: specific exception types only."""


def load(path):
    try:
        return open(path).read()
    except (OSError, ValueError):
        return None
