"""Triggers RPR007: bare / overbroad exception handlers."""


def load(path):
    try:
        return open(path).read()
    except Exception:
        return None


def probe(fn):
    try:
        return fn()
    except:  # noqa: E722 - deliberate fixture
        return None
