"""Clean for RPR003: guarded and floored denominators."""
import numpy as np


def win_probability(e, c, S):
    if S <= 0.0:
        return 0.0
    return (e + c) / S


def normalized(pools):
    total = max(float(np.sum(pools)), 1e-12)
    return pools / total
