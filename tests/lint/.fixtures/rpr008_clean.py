"""Clean for RPR008: the loop body checks the enabled flag first."""
from repro.telemetry import get_telemetry

_TEL = get_telemetry()


def sweep(profiles):
    for profile in profiles:
        if _TEL.enabled:
            _TEL.emit("sweep.step", size=len(profile))
    return len(profiles)
