"""Triggers RPR001: draws from the global NumPy RNG."""
import numpy as np


def sample_budgets(n: int) -> np.ndarray:
    noise = np.random.rand(n)
    np.random.shuffle(noise)
    return 100.0 + noise
