"""Triggers RPR006 (when placed in a solver module): wall-clock and
unseeded randomness inside numerical code."""
import random
import time


def jitter_start(profile):
    stamp = time.time()
    return profile * (1.0 + 0.01 * random.random()), stamp
