"""Triggers RPR008: telemetry facade hit inside a hot loop, unguarded."""
from repro.telemetry import get_telemetry

_TEL = get_telemetry()


def sweep(profiles):
    for profile in profiles:
        _TEL.emit("sweep.step", size=len(profile))
    return len(profiles)
