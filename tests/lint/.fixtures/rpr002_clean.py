"""Clean for RPR002: tolerance-based comparison."""
import math


def at_corner(price: float, premium: float) -> bool:
    if abs(price - 0.3) < 1e-9:
        return True
    return not math.isclose(premium, 1.5)
