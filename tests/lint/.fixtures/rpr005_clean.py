"""Clean for RPR005: None sentinel instead of a shared mutable."""


def record(value, history=None):
    history = [] if history is None else history
    history.append(value)
    return history
