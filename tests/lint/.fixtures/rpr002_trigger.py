"""Triggers RPR002: exact equality against float literals."""


def at_corner(price: float, premium: float) -> bool:
    if price == 0.3:
        return True
    return premium != 1.5
