"""Clean for RPR004: entry point exposes kernel= and initial=."""


def solve_connected_equilibrium(params, prices, tol=1e-8,
                                kernel="auto", initial=None):
    return None
