"""Triggers RPR003: division by game aggregates without a zero guard."""
import numpy as np


def win_probability(e, c, S):
    return (e + c) / S


def normalized(pools):
    total = np.sum(pools)
    return pools / total
