"""Triggers RPR009: blocking calls inside async defs of the service."""
import time


async def handle(path):
    time.sleep(0.1)
    with open(path) as fh:
        payload = fh.read()
    text = path.read_text(encoding="utf-8")
    return payload, text
