"""Fixture mini-package with a known call-graph shape.

The re-export below exercises the symbol table's import chasing:
``pkg.solve_demand`` must resolve to ``pkg.core.solve_demand``.
"""

from .core import solve_demand

__all__ = ["solve_demand"]
