"""Lock-order cycle fixture: Left and Right deadlock pairwise."""

import threading


class Left:
    def __init__(self, peer=None):
        self._lock = threading.Lock()
        self.peer: "Right" = peer
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1
            self.peer.observe(self.count)  # acquires Right._lock

    def observe(self, value):
        with self._lock:
            self.count += value


class Right:
    def __init__(self, peer=None):
        self._lock = threading.Lock()
        self.peer: "Left" = peer
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1
            self.peer.observe(self.count)  # acquires Left._lock: cycle

    def observe(self, value):
        with self._lock:
            self.count += value
