"""Solver-shaped fixture module: ``pkg.core`` puts every ``solve_*``
function here in the determinism scope (RPR012 roots)."""

import numpy as np
from numpy.random import default_rng


def sample_noise(scale, seed=None):
    rng = default_rng(seed)
    return rng.normal(0.0, scale)


def perturb():
    rng = default_rng()  # unseeded on a solver-reachable path
    return rng.random()


def helper_unreachable():
    rng = default_rng()  # unseeded, but no solver reaches it: clean
    return rng.random()


def solve_demand(load, seed=0, tol=1e-9):
    noise = sample_noise(0.1, seed=seed)  # seed forwarded: clean
    return load + noise + perturb() + tol


def solve_jittered(load):
    return load + sample_noise(0.2)  # omits `seed` -> default_rng(None)


def solve_global(load):
    return load * np.random.random()  # global RNG in the closure
