"""Seam-forwarding fixtures for RPR013."""

from .core import solve_demand


def run_dropped(load, tol=1e-8):
    return solve_demand(load)  # RPR013: tol dies in the signature


def run_forwarded(load, tol=1e-8):
    return solve_demand(load, tol=tol)  # clean: seam forwarded


def run_threshold(load, tol=1e-8):
    # Clean: `tol` is consumed as an acceptance threshold, it only
    # shares its name with the solver seam.
    value = solve_demand(load)
    return value if value > tol else 0.0
