"""Lock-discipline fixtures: one violation, one clean class."""

import threading


class Store:
    """`size` is guarded by 2/3 accesses; peek() is the violation."""

    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self.size = 0

    def add(self, key, value):
        with self._lock:
            self._items[key] = value
            self.size += 1

    def drop(self, key):
        with self._lock:
            self._items.pop(key, None)
            self.size -= 1

    def peek(self):
        return self.size  # RPR010: guarded attribute, no lock


class CleanStore:
    """Every shared-state access is under the lock; helpers are
    held-methods (only ever called with the lock held)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self.hits = 0

    def add(self, key, value):
        with self._lock:
            self._items[key] = value
            self._trim()

    def get(self, key):
        with self._lock:
            self.hits += 1
            return self._items.get(key)

    def _trim(self):
        while len(self._items) > 8:
            self._items.popitem()
            self.hits -= 1
