"""Transitive-RPR009 fixtures: the blocking call is two hops down."""

import asyncio
from pathlib import Path


def load_state(path):
    return Path(path).read_text()  # the buried blocking primitive


def prepare(path):
    return load_state(path)  # transitively blocking


def compute(values):
    return sum(values)


async def handle(path):
    data = prepare(path)  # RPR009: blocks the loop via load_state
    await asyncio.sleep(0)
    return data


async def handle_pure(values):
    return compute(values)  # clean: callee closure never blocks
