"""Clean for RPR009: async code awaits; file I/O runs in an executor."""
import asyncio
import time


async def handle(path):
    await asyncio.sleep(0.1)
    loop = asyncio.get_running_loop()
    payload = await loop.run_in_executor(None, _read, path)
    return payload


def _read(path):
    # Synchronous helpers off the event loop may block freely.
    time.sleep(0.0)
    with open(path) as fh:
        return fh.read()
