"""Triggers RPR004: solver entry point missing its kernel/warm seams."""


def solve_connected_equilibrium(params, prices, tol=1e-8):
    return None
