"""Triggers RPR005: mutable default arguments."""


def record(value, history=[]):
    history.append(value)
    return history


def tag(value, *, labels={}):
    return dict(labels, value=value)
