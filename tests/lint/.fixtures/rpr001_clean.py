"""Clean for RPR001: a seeded Generator is threaded through."""
import numpy as np


def sample_budgets(n: int, rng: np.random.Generator) -> np.ndarray:
    return 100.0 + rng.random(n)


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)
