"""Clean for RPR006: monotonic timing, seeded generator threaded in."""
import time


def timed_sweep(profile, rng):
    start = time.perf_counter()
    shaken = profile * (1.0 + 0.01 * rng.random())
    return shaken, time.perf_counter() - start
