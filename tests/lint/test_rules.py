"""Golden fixture tests: every RPR rule fires on its triggering snippet
and stays silent on the paired clean snippet.

The fixtures live in ``tests/lint/.fixtures`` (a dot-directory so the
repository's own lint sweep, ruff, and pytest collection all skip the
deliberately broken files).  Module classification is path-driven, so
each case lints the fixture *source* under a virtual path that puts it
in the right package context (solver module, test file, ...).
"""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, LintConfig, lint_source

FIXTURES = Path(__file__).parent / ".fixtures"

#: Virtual path per rule: where the snippet pretends to live.  RPR006
#: only applies inside solver packages; the rest are package-agnostic
#: but must not look like test files (RPR002 skips tests by default).
VIRTUAL_PATHS = {
    "RPR001": "src/repro/analysis/sample.py",
    "RPR002": "src/repro/core/sample.py",
    "RPR003": "src/repro/core/sample.py",
    "RPR004": "src/repro/core/sample.py",
    "RPR005": "src/repro/offloading/sample.py",
    "RPR006": "src/repro/kernels/sample.py",
    "RPR007": "src/repro/game/sample.py",
    "RPR008": "src/repro/serving/sample.py",
    "RPR009": "src/repro/service/sample.py",
}

RULE_IDS = sorted(VIRTUAL_PATHS)


def lint_fixture(rule_id: str, kind: str):
    stem = f"{rule_id.lower()}_{kind}"
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    return lint_source(source, path=VIRTUAL_PATHS[rule_id])


def test_catalog_covers_all_fixture_rules():
    assert sorted(r.id for r in ALL_RULES) == RULE_IDS


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_trigger_fixture_fires(rule_id):
    findings = lint_fixture(rule_id, "trigger")
    fired = {f.rule_id for f in findings}
    assert rule_id in fired, (
        f"{rule_id} did not fire on its trigger fixture; got {fired}")


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_is_silent(rule_id):
    findings = lint_fixture(rule_id, "clean")
    fired = [f for f in findings if f.rule_id == rule_id]
    assert fired == [], (
        f"{rule_id} fired on its clean fixture: "
        f"{[f.message for f in fired]}")


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_findings_carry_location_and_severity(rule_id):
    for f in lint_fixture(rule_id, "trigger"):
        assert f.path == VIRTUAL_PATHS[rule_id]
        assert f.line >= 1
        assert f.col >= 0
        assert f.severity in ("error", "warning")
        assert f.message


def test_rpr001_trigger_counts():
    # Two global-RNG touches: np.random.rand and np.random.shuffle.
    findings = lint_fixture("RPR001", "trigger")
    assert len([f for f in findings if f.rule_id == "RPR001"]) == 2


def test_rpr002_exempts_test_files_by_default():
    source = (FIXTURES / "rpr002_trigger.py").read_text()
    findings = lint_source(source, path="tests/core/test_sample.py")
    assert not any(f.rule_id == "RPR002" for f in findings)


def test_rpr006_only_applies_to_solver_modules():
    source = (FIXTURES / "rpr006_trigger.py").read_text()
    outside = lint_source(source, path="src/repro/analysis/sample.py")
    assert not any(f.rule_id == "RPR006" for f in outside)


def test_rpr007_exempts_resilience_package():
    source = (FIXTURES / "rpr007_trigger.py").read_text()
    inside = lint_source(source, path="src/repro/resilience/sample.py")
    assert not any(f.rule_id == "RPR007" for f in inside)


def test_rpr003_respects_select_config():
    source = (FIXTURES / "rpr003_trigger.py").read_text()
    config = LintConfig(select=frozenset({"RPR005"}))
    findings = lint_source(source, path=VIRTUAL_PATHS["RPR003"],
                           config=config)
    assert findings == []


def test_ignore_config_switches_rule_off():
    source = (FIXTURES / "rpr005_trigger.py").read_text()
    config = LintConfig(ignore=frozenset({"RPR005"}))
    findings = lint_source(source, path=VIRTUAL_PATHS["RPR005"],
                           config=config)
    assert not any(f.rule_id == "RPR005" for f in findings)


def test_severity_override_applies():
    source = (FIXTURES / "rpr005_trigger.py").read_text()
    config = LintConfig(severities={"RPR005": "warning"})
    findings = [f for f in lint_source(
        source, path=VIRTUAL_PATHS["RPR005"], config=config)
        if f.rule_id == "RPR005"]
    assert findings and all(f.severity == "warning" for f in findings)
