"""End-to-end control-plane properties the issue pins down:

* the induced chaos scenarios drive identical decision chains across
  two runs under the same seed (acceptance: E2E determinism);
* ``run_resilient_pipeline`` with the control loop disabled is
  bit-identical to the pre-control pipeline (acceptance: zero overhead
  when off);
* the controlled chaos pipeline detects, verifies, and applies at least
  one remediation, and every applied action passed verification first.
"""

import json

import numpy as np

from repro.analysis import outage_plan, recovery_rounds
from repro.control import ControlLoop, ControlTarget, induce
from repro.core import homogeneous
from repro.resilience import FaultPlan, run_resilient_pipeline
from repro.telemetry import telemetry_session


def connected_params():
    return homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2, h=0.8,
                       edge_cost=0.2, cloud_cost=0.1)


def _decision_chain(seed):
    """One full seeded scenario mix → JSON-shaped report list."""
    with telemetry_session():
        scenario = induce("cache-collapse", seed=seed)
        loop = ControlLoop(ControlTarget(engine=scenario.engine),
                           cooldown_ticks=1)
        reports = [loop.run_once()]
        induce("slo-breach")
        reports.append(loop.run_once())
        induce("solver-divergence", seed=seed)
        reports.append(loop.run_once())
        return [r.to_dict() for r in reports], loop.summary()


class TestDeterminism:
    def test_same_seed_identical_decision_chain(self):
        first = _decision_chain(seed=11)
        second = _decision_chain(seed=11)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_chain_actually_contains_decisions(self):
        reports, summary = _decision_chain(seed=11)
        assert summary["actions_applied"] >= 2
        assert summary["anomalies"] >= 2


class TestPipelineBitIdentical:
    def test_controller_none_matches_pre_control_pipeline(self):
        params = connected_params()
        plan = outage_plan(0.2, 10, transient_rate=0.3, seed=5)

        def run(**kwargs):
            out = run_resilient_pipeline(params, plan, n_rounds=10,
                                         seed=5, **kwargs)
            return out

        a = run()
        b = run(controller=None)
        assert np.array_equal(a.equilibrium.e, b.equilibrium.e)
        assert np.array_equal(a.equilibrium.c, b.equilibrium.c)
        assert a.prices == b.prices
        assert len(a.rounds) == len(b.rounds)
        for ra, rb in zip(a.rounds, b.rounds):
            assert ra.winner == rb.winner
            assert np.array_equal(ra.payoffs, rb.payoffs)
            assert ra.esp_revenue == rb.esp_revenue
            assert ra.csp_revenue == rb.csp_revenue
        assert a.report == b.report
        assert a.control_summary is None
        assert b.control_summary is None

    def test_clean_plan_with_controller_changes_nothing(self):
        # A fault-free run gives the detectors nothing to act on, so
        # the controlled outcome must equal the uncontrolled one.
        params = connected_params()
        plan = FaultPlan.none()
        baseline = run_resilient_pipeline(params, plan, n_rounds=5,
                                          seed=2)
        with telemetry_session():
            controller = ControlLoop(ControlTarget())
            controlled = run_resilient_pipeline(params, plan,
                                                n_rounds=5, seed=2,
                                                controller=controller)
        assert np.array_equal(baseline.equilibrium.e,
                              controlled.equilibrium.e)
        for ra, rb in zip(baseline.rounds, controlled.rounds):
            assert ra.winner == rb.winner
            assert np.array_equal(ra.payoffs, rb.payoffs)
        assert controlled.control_summary is not None
        assert controlled.control_summary["actions_applied"] == 0


class TestControlledChaos:
    def test_faulted_run_detects_verifies_applies(self):
        params = connected_params()
        plan = outage_plan(0.0, 12, transient_rate=0.8, seed=0)
        with telemetry_session() as tel:
            controller = ControlLoop(ControlTarget(),
                                     cooldown_ticks=2, action_budget=8)
            out = run_resilient_pipeline(params, plan, n_rounds=12,
                                         seed=0, controller=controller)
            events = tel.events.tail()

        summary = out.control_summary
        assert summary is not None
        assert summary["anomalies"] >= 1
        assert summary["actions_applied"] >= 1
        kinds = [e["kind"] for e in events]
        for required in ("control.detected", "control.proposed",
                         "control.verified", "control.applied"):
            assert required in kinds, f"missing {required}"
        # The applied set is a subset of the verified set: nothing can
        # be applied without passing verification first.
        verified = [json.dumps(e["remediation"], sort_keys=True)
                    for e in events if e["kind"] == "control.verified"]
        applied = [json.dumps(e["remediation"], sort_keys=True)
                   for e in events if e["kind"] == "control.applied"]
        assert set(applied) <= set(verified)

    def test_recovery_rounds_metric(self):
        with telemetry_session():
            scenario = induce("cache-collapse", seed=4)
            loop = ControlLoop(ControlTarget(engine=scenario.engine))
            loop.run_once()
            loop.run_once()
        assert recovery_rounds(loop.reports) == 1.0
        assert np.isnan(recovery_rounds([]))

    def test_controlled_run_is_deterministic(self):
        params = connected_params()
        plan = outage_plan(0.0, 8, transient_rate=0.7, seed=3)

        def run():
            with telemetry_session():
                controller = ControlLoop(ControlTarget(),
                                         cooldown_ticks=2)
                out = run_resilient_pipeline(params, plan, n_rounds=8,
                                             seed=3,
                                             controller=controller)
                return (out.mean_miner_payoff, out.control_summary,
                        [r.to_dict() for r in controller.reports])

        first = run()
        second = run()
        assert json.dumps(first[1:], sort_keys=True) == \
            json.dumps(second[1:], sort_keys=True)
        assert first[0] == second[0]
