"""The verification battery itself: golden checks hold on every kernel,
the per-remediation check mapping is sound, and verification solves
never leak into the telemetry the detectors read."""

import math

import pytest

from repro.control import (CheckResult, CompressScenario,
                           EnterDegradedMode, FlushCache,
                           RebuildWarmIndex, Remediation, ResizeCache,
                           SwitchKernel, TightenRetryPolicy, Verifier,
                           check_all_cloud_limit,
                           check_connected_closed_form,
                           check_retry_policy_invariants,
                           check_serving_matches_direct,
                           check_standalone_cross_solver,
                           check_typespace_compression,
                           run_golden_checks)
from repro.control.verify import quiet_telemetry
from repro.resilience import RetryPolicy
from repro.telemetry import TELEMETRY, telemetry_session

KERNELS = ["scalar", "running", "vectorized"]


class TestGoldenChecks:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_closed_form_holds_on_kernel(self, kernel):
        result = check_connected_closed_form(kernel)
        assert result.ok, result.detail
        assert result.max_error < 1e-5

    def test_cross_solver_agreement(self):
        result = check_standalone_cross_solver("vectorized")
        assert result.ok, result.detail

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_serving_matches_direct(self, kernel):
        result = check_serving_matches_direct(kernel)
        assert result.ok, result.detail

    def test_serving_check_survives_flush(self):
        result = check_serving_matches_direct(flush_before_serve=True)
        assert result.ok, result.detail

    def test_serving_check_survives_warm_index_rebuild(self):
        result = check_serving_matches_direct(rebuild_warm_index=True)
        assert result.ok, result.detail

    def test_all_cloud_limit(self):
        result = check_all_cloud_limit()
        assert result.ok, result.detail

    def test_run_golden_checks_all_pass(self):
        results = run_golden_checks("vectorized")
        assert len(results) == 4
        assert all(r.ok for r in results), \
            [r.detail for r in results if not r.ok]


class TestTypespaceCompressionCheck:
    def test_bound_honored_on_scratch_population(self):
        result = check_typespace_compression(16, n_miners=128)
        assert result.ok
        assert math.isfinite(result.max_error)
        assert "certified bound" in result.detail

    def test_never_vacuous_via_identity_path(self):
        # A production n_types above the scratch population must not
        # short-circuit to the exact identity path (bound 0, error 0):
        # that would "verify" nothing about actual compression.
        result = check_typespace_compression(512, n_miners=128)
        assert result.ok
        assert "k=64" in result.detail
        assert result.max_error > 0.0

    def test_max_bound_rejects_loose_certificate(self):
        result = check_typespace_compression(8, n_miners=128,
                                             max_bound=1e-12)
        assert not result.ok

    def test_bad_n_types_fails_instead_of_raising(self):
        assert not check_typespace_compression(0).ok


class TestRetryPolicyCheck:
    def test_default_tightened_policy_passes(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.05,
                             max_delay=0.5)
        assert check_retry_policy_invariants(policy).ok

    def test_invalid_policy_fails_instead_of_raising(self):
        # RetryPolicy validates eagerly, so build the failing check
        # through the constructor error path.
        with pytest.raises(Exception):
            RetryPolicy(max_attempts=0)

    def test_jitterless_policy_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1,
                             max_delay=1.0, jitter="none")
        assert check_retry_policy_invariants(policy).ok


class TestVerifierMapping:
    def test_switch_kernel_verifies_target_kernel(self):
        verifier = Verifier()
        report = verifier.verify(SwitchKernel(target="running"),
                                 current_kernel="vectorized")
        assert report.ok
        assert len(report.checks) == 3

    def test_cache_actions_use_serving_check(self):
        verifier = Verifier()
        for remediation in (ResizeCache(maxsize=16), FlushCache()):
            report = verifier.verify(remediation)
            assert report.ok, remediation.kind
            assert any("serving" in c.name for c in report.checks)

    def test_degradation_uses_all_cloud_limit(self):
        report = Verifier().verify(EnterDegradedMode())
        assert report.ok
        assert any("all-cloud" in c.name for c in report.checks)

    def test_warm_rebuild_and_retry_verify(self):
        verifier = Verifier()
        assert verifier.verify(RebuildWarmIndex()).ok
        assert verifier.verify(TightenRetryPolicy()).ok

    def test_compress_scenario_gated_by_typespace_check(self):
        report = Verifier().verify(CompressScenario(n_types=64))
        assert report.ok
        assert any("typespace-compression" in c.name
                   for c in report.checks)

    def test_unknown_remediation_fails_closed(self):
        class Mystery(Remediation):
            kind = "mystery"
            cooldown_class = "mystery"

        report = Verifier().verify(Mystery())
        assert not report.ok


class TestQuietTelemetry:
    def test_suppresses_and_restores(self):
        with telemetry_session():
            assert TELEMETRY.enabled
            with quiet_telemetry():
                assert not TELEMETRY.enabled
            assert TELEMETRY.enabled

    def test_verification_does_not_feed_detectors(self):
        with telemetry_session() as tel:
            baseline = tel.metrics.window_snapshot()
            Verifier().verify(SwitchKernel(target="scalar"))
            window = tel.metrics.window_snapshot()
            # No solver iterations, cache lookups, or serving timings
            # may have been recorded by the verification solves.
            assert window == baseline

    def test_respects_pre_disabled_state(self):
        with telemetry_session() as tel:
            tel.enabled = False
            with quiet_telemetry():
                assert not TELEMETRY.enabled
            assert not tel.enabled


class TestCheckResult:
    def test_to_dict_is_json_shaped(self):
        result = CheckResult("x", True, 1e-9, detail="d")
        d = result.to_dict()
        assert d["name"] == "x" and d["ok"] is True
        assert math.isclose(d["max_error"], 1e-9)
