"""Per-detector tests: each seeded induction fires exactly its detector
and the loop answers with the playbook remediation, verified then
applied, with the full decision chain in the event log."""

import pytest

from repro.control import (KIND_CACHE_COLLAPSE, KIND_RETRY_STORM,
                           KIND_SLO_BREACH, KIND_SOLVER_DIVERGENCE,
                           KIND_WARM_DRIFT, ControlLoop, ControlTarget,
                           induce)
from repro.serving import ServingEngine
from repro.telemetry import telemetry_session


def _event_kinds(tel):
    return [e["kind"] for e in tel.events.tail()]


class TestCacheCollapse:
    def test_detected_and_cache_grown(self):
        with telemetry_session() as tel:
            scenario = induce("cache-collapse", seed=3)
            assert scenario.engine is not None
            before = scenario.engine.cache.maxsize
            loop = ControlLoop(ControlTarget(engine=scenario.engine))
            report = loop.run_once()

            assert [a.kind for a in report.anomalies] == \
                [KIND_CACHE_COLLAPSE]
            assert report.anomalies[0].evidence["evictions"] > 0
            [decision] = report.decisions
            assert decision.remediation.kind == "resize-cache"
            assert decision.outcome == "applied"
            assert decision.report.ok
            assert scenario.engine.cache.maxsize == 2 * before
            kinds = _event_kinds(tel)
            for k in ("control.detected", "control.proposed",
                      "control.verified", "control.applied"):
                assert k in kinds

    def test_anomaly_clears_in_next_window(self):
        with telemetry_session():
            scenario = induce("cache-collapse", seed=3)
            loop = ControlLoop(ControlTarget(engine=scenario.engine))
            loop.run_once()
            second = loop.run_once()
            assert second.anomalies == []
            assert second.decisions == []


class TestRetryStorm:
    def test_critical_storm_enters_degradation(self):
        with telemetry_session():
            scenario = induce("retry-storm", seed=1)
            assert scenario.dispatcher is not None
            target = ControlTarget(dispatcher=scenario.dispatcher)
            loop = ControlLoop(target)
            report = loop.run_once()

            [anomaly] = report.anomalies
            assert anomaly.kind == KIND_RETRY_STORM
            assert anomaly.severity == "critical"
            [decision] = report.decisions
            assert decision.remediation.kind == "enter-degraded"
            assert decision.outcome == "applied"
            assert target.degraded

    def test_recovery_exits_degradation_after_clean_windows(self):
        with telemetry_session():
            scenario = induce("retry-storm", seed=1)
            target = ControlTarget(dispatcher=scenario.dispatcher)
            loop = ControlLoop(target, recovery_windows=3)
            loop.run_once()
            assert target.degraded
            reports = [loop.run_once() for _ in range(3)]
            exit_decisions = [d for r in reports for d in r.decisions
                              if d.remediation.kind == "exit-degraded"]
            assert len(exit_decisions) == 1
            assert exit_decisions[0].outcome == "applied"
            assert not target.degraded


class TestSolverDivergence:
    def test_kernel_stepped_down_robustness_chain(self):
        with telemetry_session():
            induce("solver-divergence")
            engine = ServingEngine(warm_start=False, use_guard=False)
            loop = ControlLoop(ControlTarget(engine=engine))
            report = loop.run_once()

            [anomaly] = report.anomalies
            assert anomaly.kind == KIND_SOLVER_DIVERGENCE
            [decision] = report.decisions
            assert decision.remediation.kind == "switch-kernel"
            assert decision.remediation.target == "running"
            assert decision.outcome == "applied"
            assert engine.kernel_override == "running"


class TestWarmDrift:
    def test_warm_index_rebuilt(self):
        with telemetry_session():
            induce("warm-drift")
            engine = ServingEngine(use_guard=False)
            stale_index = engine.warm_index
            loop = ControlLoop(ControlTarget(engine=engine))
            report = loop.run_once()

            assert [a.kind for a in report.anomalies] == \
                [KIND_WARM_DRIFT]
            [decision] = report.decisions
            assert decision.remediation.kind == "rebuild-warm-index"
            assert decision.outcome == "applied"
            assert engine.warm_index is not stale_index


class TestSloBreach:
    def test_cache_grown_when_already_on_fastest_kernel(self):
        with telemetry_session():
            induce("slo-breach")
            engine = ServingEngine(warm_start=False, use_guard=False)
            before = engine.cache.maxsize
            loop = ControlLoop(ControlTarget(engine=engine))
            report = loop.run_once()

            assert [a.kind for a in report.anomalies] == \
                [KIND_SLO_BREACH]
            [decision] = report.decisions
            # Default kernel is already the fastest, so the playbook
            # falls through to growing the cache.
            assert decision.remediation.kind == "resize-cache"
            assert decision.outcome == "applied"
            assert engine.cache.maxsize == 2 * before


class TestLoopBounds:
    def test_cooldown_suppresses_repeat_actions(self):
        with telemetry_session():
            induce("slo-breach")
            engine = ServingEngine(warm_start=False, use_guard=False)
            loop = ControlLoop(ControlTarget(engine=engine),
                               cooldown_ticks=5)
            first = loop.run_once()
            assert first.applied
            induce("slo-breach")
            second = loop.run_once()
            assert second.decisions == []
            assert any("cooldown" in reason
                       for _, reason in second.suppressed)

    def test_action_budget_exhausts(self):
        with telemetry_session():
            engine = ServingEngine(warm_start=False, use_guard=False)
            loop = ControlLoop(ControlTarget(engine=engine),
                               cooldown_ticks=0, action_budget=1)
            induce("slo-breach")
            assert loop.run_once().applied
            induce("slo-breach")
            report = loop.run_once()
            assert report.decisions == []
            assert any("budget" in reason
                       for _, reason in report.suppressed)

    def test_dry_run_never_mutates(self):
        with telemetry_session():
            scenario = induce("cache-collapse", seed=3)
            before = scenario.engine.cache.maxsize
            loop = ControlLoop(ControlTarget(engine=scenario.engine),
                               dry_run=True)
            report = loop.run_once()
            [decision] = report.decisions
            assert decision.outcome == "dry-run"
            assert decision.report.ok
            assert scenario.engine.cache.maxsize == before
            assert loop.actions_applied == 0


@pytest.mark.parametrize("name", ["cache-collapse", "retry-storm",
                                  "solver-divergence", "warm-drift",
                                  "slo-breach"])
def test_inductions_are_deterministic(name):
    def run():
        with telemetry_session():
            scenario = induce(name, seed=7)
            return scenario.detail

    assert run() == run()
