"""Actuator transaction semantics: pre-verify rejection, post-check
rollback, no-op skipping, and dry-run — each leaving the target exactly
as contracted."""

from repro.control import (Actuator, CheckResult, ControlTarget,
                           EnterDegradedMode, ExitDegradedMode,
                           FlushCache, RebuildWarmIndex, ResizeCache,
                           SwitchKernel, TightenRetryPolicy,
                           VerificationReport, Verifier)
from repro.resilience import RetryPolicy
from repro.serving import ScenarioSpec, ServingEngine
from repro.telemetry import telemetry_session
from repro.core import homogeneous


def _engine(**kwargs):
    kwargs.setdefault("warm_start", False)
    kwargs.setdefault("use_guard", False)
    return ServingEngine(**kwargs)


def _fingerprint(target):
    """Everything restore() promises to put back, for equality checks."""
    fp = {"degraded": target.degraded,
          "retry_tightened": target.retry_tightened}
    if target.engine is not None:
        fp["kernel_override"] = target.engine.kernel_override
        fp["maxsize"] = target.engine.cache.maxsize
        fp["cache_keys"] = list(target.engine.cache.snapshot_entries())
        fp["warm_index"] = id(target.engine.warm_index)
    if target.dispatcher is not None:
        fp["policy"] = target.dispatcher.policy
    return fp


class _RejectingVerifier(Verifier):
    def verify(self, remediation, current_kernel="vectorized"):
        return VerificationReport(
            remediation=remediation,
            checks=(CheckResult("forced-failure", False,
                                detail="injected by test"),))


def _failing_self_check(target):
    return CheckResult("forced-post-failure", False,
                       detail="injected by test")


class TestRejection:
    def test_failed_verification_is_never_applied(self):
        with telemetry_session() as tel:
            target = ControlTarget(engine=_engine())
            before = _fingerprint(target)
            actuator = Actuator(target,
                                verifier=_RejectingVerifier("vectorized"))
            decision = actuator.execute(SwitchKernel(target="running"))

            assert decision.outcome == "rejected"
            assert not decision.applied
            assert not decision.report.ok
            assert _fingerprint(target) == before
            kinds = [e["kind"] for e in tel.events.tail()]
            assert "control.rejected" in kinds
            assert "control.applied" not in kinds


class TestRollback:
    def test_failed_post_check_restores_every_seam(self):
        with telemetry_session() as tel:
            engine = _engine(maxsize=8)
            # Populate the cache so rollback has entries to preserve.
            engine.serve(ScenarioSpec(params=homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2, h=0.8)))
            target = ControlTarget(engine=engine)
            before = _fingerprint(target)

            actuator = Actuator(target,
                                self_check=_failing_self_check)
            decision = actuator.execute(ResizeCache(maxsize=64))

            assert decision.outcome == "rolled-back"
            assert decision.post_check is not None
            assert not decision.post_check.ok
            assert _fingerprint(target) == before
            kinds = [e["kind"] for e in tel.events.tail()]
            assert "control.rolled_back" in kinds
            assert "control.applied" not in kinds

    def test_kernel_switch_rolls_back_override(self):
        with telemetry_session():
            engine = _engine()
            target = ControlTarget(engine=engine)
            actuator = Actuator(target,
                                self_check=_failing_self_check)
            decision = actuator.execute(SwitchKernel(target="scalar"))
            assert decision.outcome == "rolled-back"
            assert engine.kernel_override is None

    def test_degradation_flag_rolls_back(self):
        with telemetry_session():
            target = ControlTarget(engine=_engine())
            actuator = Actuator(target,
                                self_check=_failing_self_check)
            decision = actuator.execute(EnterDegradedMode())
            assert decision.outcome == "rolled-back"
            assert not target.degraded


class TestApply:
    def test_applied_remediation_survives_passing_post_check(self):
        with telemetry_session() as tel:
            engine = _engine()
            target = ControlTarget(engine=engine)
            actuator = Actuator(target)
            decision = actuator.execute(SwitchKernel(target="running"))

            assert decision.outcome == "applied"
            assert decision.post_check is not None
            assert decision.post_check.ok
            assert engine.kernel_override == "running"
            assert "control.applied" in \
                [e["kind"] for e in tel.events.tail()]

    def test_switch_to_default_kernel_clears_override(self):
        with telemetry_session():
            engine = _engine()
            engine.set_kernel_override("scalar")
            target = ControlTarget(engine=engine)
            decision = Actuator(target).execute(
                SwitchKernel(target="vectorized"))
            assert decision.outcome == "applied"
            assert engine.kernel_override is None

    def test_tighten_retry_policy_swaps_dispatcher_policy(self):
        from repro.control.scenarios import induce_retry_storm
        with telemetry_session():
            scenario = induce_retry_storm(seed=0)
            target = ControlTarget(dispatcher=scenario.dispatcher)
            tight = RetryPolicy(max_attempts=2, base_delay=0.05,
                                max_delay=0.5)
            decision = Actuator(target).execute(
                TightenRetryPolicy(policy=tight))
            assert decision.outcome == "applied"
            assert scenario.dispatcher.policy == tight
            assert target.retry_tightened

    def test_flush_and_rebuild_apply_cleanly(self):
        with telemetry_session():
            engine = ServingEngine(warm_start=True, use_guard=False)
            engine.serve(ScenarioSpec(params=homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2, h=0.8)))
            target = ControlTarget(engine=engine)
            # No post-check: the live self-check would repopulate the
            # cache with the canonical scenario it serves.
            actuator = Actuator(target, self_check=None)
            assert actuator.execute(FlushCache()).outcome == "applied"
            assert len(engine.cache) == 0
            assert actuator.execute(
                RebuildWarmIndex()).outcome == "applied"


class TestSkips:
    def test_retry_action_on_engine_only_target_is_skipped(self):
        with telemetry_session() as tel:
            target = ControlTarget(engine=_engine())
            decision = Actuator(target).execute(TightenRetryPolicy())
            assert decision.outcome == "skipped"
            assert "control.skipped" in \
                [e["kind"] for e in tel.events.tail()]

    def test_exit_degraded_when_not_degraded_is_skipped(self):
        with telemetry_session():
            target = ControlTarget(engine=_engine())
            decision = Actuator(target).execute(ExitDegradedMode())
            assert decision.outcome == "skipped"

    def test_dry_run_verifies_but_never_touches_target(self):
        with telemetry_session() as tel:
            engine = _engine()
            target = ControlTarget(engine=engine)
            before = _fingerprint(target)
            decision = Actuator(target, dry_run=True).execute(
                SwitchKernel(target="running"))
            assert decision.outcome == "dry-run"
            assert decision.report.ok
            assert _fingerprint(target) == before
            kinds = [e["kind"] for e in tel.events.tail()]
            assert "control.verified" in kinds
            assert "control.applied" not in kinds
