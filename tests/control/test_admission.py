"""The admission-control remediation: a sustained latency-SLO breach
halves the online service's solve concurrency — detected, verified
against a scratch service, applied through the actuator, and rolled
back when the live post-check fails."""

import pytest

from repro.control import (KIND_SLO_BREACH, Actuator, AdmissionControl,
                           ControlLoop, ControlTarget, Proposer,
                           check_admission_serves, induce)
from repro.control.anomalies import Anomaly
from repro.control.target import TargetState
from repro.control.verify import CheckResult
from repro.service import EquilibriumService
from repro.telemetry import telemetry_session


def slo_anomaly():
    return Anomaly(kind=KIND_SLO_BREACH, detector="latency-slo",
                   message="p95 over target")


class TestProposerPlaybook:
    def test_requires_sustained_streak(self):
        proposer = Proposer(sustained_windows=2)
        state = TargetState(admission_inflight=8)
        first = proposer.propose_all([slo_anomaly()], state)
        assert all(r.kind != "admission-control" for r in first)
        second = proposer.propose_all([slo_anomaly()], state)
        [admission] = [r for r in second
                       if r.kind == "admission-control"]
        assert admission.max_inflight == 4

    def test_streak_resets_on_clean_window(self):
        proposer = Proposer(sustained_windows=2)
        state = TargetState(admission_inflight=8)
        proposer.propose_all([slo_anomaly()], state)
        proposer.propose_all([], state)  # clean window resets
        after = proposer.propose_all([slo_anomaly()], state)
        assert all(r.kind != "admission-control" for r in after)

    def test_engine_only_target_never_throttles(self):
        """Pinned: with no service attached (admission_inflight=0) the
        slo-breach playbook behaves exactly as before this feature."""
        proposer = Proposer(sustained_windows=2)
        state = TargetState(admission_inflight=0)
        for _ in range(4):
            proposals = proposer.propose_all([slo_anomaly()], state)
            assert all(r.kind != "admission-control"
                       for r in proposals)

    def test_halving_floors_at_one(self):
        proposer = Proposer(sustained_windows=1)
        state = TargetState(admission_inflight=1)
        # Already at the floor: halving again would be a no-op, so the
        # playbook must not propose it.
        proposals = proposer.propose_all([slo_anomaly()], state)
        assert all(r.kind != "admission-control" for r in proposals)


class TestVerification:
    def test_check_admission_serves_passes_for_sane_bounds(self):
        with telemetry_session():
            check = check_admission_serves(4)
        assert check.ok, check.detail
        assert "admission-serves" in check.name

    def test_check_rejects_out_of_range_bounds(self):
        assert not check_admission_serves(0).ok
        assert not check_admission_serves(100_000).ok


class TestEndToEnd:
    def test_sustained_breach_fires_verifies_and_applies(self):
        """The acceptance scenario: two consecutive slo-breach windows
        against a service-fronting target end in an applied
        admission-control decision and a live resize."""
        with telemetry_session():
            service = EquilibriumService(max_inflight=8)
            target = ControlTarget(service=service)
            loop = ControlLoop(target, cooldown_ticks=0)

            induce("slo-breach")
            first = loop.run_once()
            assert [a.kind for a in first.anomalies] == \
                [KIND_SLO_BREACH]
            assert all(d.remediation.kind != "admission-control"
                       for d in first.decisions)
            assert service.max_inflight == 8

            induce("slo-breach")
            second = loop.run_once()
            [decision] = second.decisions
            assert decision.remediation.kind == "admission-control"
            assert decision.outcome == "applied"
            assert decision.report.ok
            assert any("admission-serves" in c.name
                       for c in decision.report.checks)
            assert service.max_inflight == 4
            service.close()

    def test_failed_post_check_rolls_back_resize(self):
        with telemetry_session():
            service = EquilibriumService(max_inflight=8)
            target = ControlTarget(service=service)
            actuator = Actuator(
                target,
                self_check=lambda t: CheckResult(
                    "forced-fail", False, 1.0, detail="induced"))
            decision = actuator.execute(
                AdmissionControl(max_inflight=4, reason="test"))
            assert decision.outcome == "rolled-back"
            assert service.max_inflight == 8  # snapshot restored
            service.close()

    def test_dry_run_verifies_without_resizing(self):
        with telemetry_session():
            service = EquilibriumService(max_inflight=8)
            target = ControlTarget(service=service)
            actuator = Actuator(target, dry_run=True)
            decision = actuator.execute(
                AdmissionControl(max_inflight=4, reason="test"))
            assert decision.outcome == "dry-run"
            assert decision.report.ok
            assert service.max_inflight == 8
            service.close()
