"""The windowed telemetry view the detectors poll: window_snapshot
delta semantics, the window-reader helpers, and the cache seams the
actuator relies on for transactional rollback."""

from repro.control import counter_sum, gauge_value, histogram_window
from repro.serving.cache import ScenarioCache
from repro.telemetry.metrics import MetricsRegistry, snapshot_delta


def _registry():
    reg = MetricsRegistry()

    def counter(kind):
        return reg.counter("requests_total", "requests",
                           labels={"kind": kind})

    hist = reg.histogram("latency_seconds", "latency",
                         buckets=(0.1, 0.5, 1.0))
    gauge = reg.gauge("active", "active")
    return reg, counter, hist, gauge


class TestWindowSnapshot:
    def test_first_window_is_full_snapshot(self):
        reg, counter, hist, gauge = _registry()
        counter("a").inc(3)
        window = reg.window_snapshot()
        assert counter_sum(window, "requests_total") == 3.0

    def test_second_window_is_a_delta(self):
        reg, counter, hist, gauge = _registry()
        counter("a").inc(3)
        reg.window_snapshot()
        counter("a").inc(2)
        window = reg.window_snapshot()
        assert counter_sum(window, "requests_total") == 2.0

    def test_empty_window_shows_zero_rates(self):
        reg, counter, hist, gauge = _registry()
        counter("a").inc(5)
        hist.observe(0.2)
        reg.window_snapshot()
        window = reg.window_snapshot()
        assert counter_sum(window, "requests_total") == 0.0
        assert histogram_window(window, "latency_seconds").count == 0

    def test_gauges_report_level_not_flow(self):
        reg, counter, hist, gauge = _registry()
        gauge.set(7.0)
        reg.window_snapshot()
        window = reg.window_snapshot()
        assert gauge_value(window, "active") == 7.0

    def test_histogram_window_quantiles_are_windowed(self):
        reg, counter, hist, gauge = _registry()
        # First window: all fast observations.
        for _ in range(20):
            hist.observe(0.05)
        reg.window_snapshot()
        # Second window: all slow — lifetime p95 would still look
        # fast-ish, the windowed p95 must not.
        for _ in range(20):
            hist.observe(0.9)
        view = histogram_window(reg.window_snapshot(),
                                "latency_seconds")
        assert view.count == 20
        assert view.p95 > 0.5
        assert view.mean > 0.5

    def test_counter_sum_filters_by_labels(self):
        reg, counter, hist, gauge = _registry()
        counter("a").inc(3)
        counter("b").inc(4)
        window = reg.window_snapshot()
        assert counter_sum(window, "requests_total") == 7.0
        assert counter_sum(window, "requests_total",
                           labels={"kind": "a"}) == 3.0

    def test_missing_metric_reads_as_empty(self):
        reg, *_ = _registry()
        window = reg.window_snapshot()
        assert counter_sum(window, "no_such_metric") == 0.0
        assert gauge_value(window, "no_such_metric") is None
        assert histogram_window(window, "no_such_metric") is None

    def test_snapshot_delta_none_before_is_identity(self):
        reg, counter, hist, gauge = _registry()
        counter("a").inc(2)
        snap = reg.snapshot()
        delta = snapshot_delta(None, snap)
        assert counter_sum(delta, "requests_total") == 2.0

    def test_registry_reset_mid_window_clamps_to_zero(self):
        reg, counter, hist, gauge = _registry()
        counter("a").inc(9)
        reg.window_snapshot()
        reg.reset()
        counter("a").inc(1)
        window = reg.window_snapshot()
        # Shrinking counters never report a negative rate.
        assert counter_sum(window, "requests_total") >= 0.0


class TestCacheSeams:
    def test_resize_evicts_lru_down_to_bound(self):
        cache = ScenarioCache(maxsize=8)
        for i in range(6):
            cache.put(f"k{i}", i)
        evicted = cache.resize(2)
        assert evicted == 4
        assert cache.maxsize == 2
        assert len(cache) == 2
        assert cache.get("k5") == 5
        assert cache.get("k0") is None

    def test_resize_up_keeps_entries(self):
        cache = ScenarioCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.resize(64) == 0
        assert cache.maxsize == 64
        assert cache.get("a") == 1

    def test_snapshot_restore_round_trip(self):
        cache = ScenarioCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        entries = cache.snapshot_entries()
        cache.clear()
        assert cache.get("a") is None
        cache.restore_entries(entries)
        assert cache.get("a") == 1
        assert cache.get("b") == 2

    def test_snapshot_is_isolated_from_later_puts(self):
        cache = ScenarioCache(maxsize=4)
        cache.put("a", 1)
        entries = cache.snapshot_entries()
        cache.put("z", 26)
        assert "z" not in entries

    def test_stats_delta(self):
        cache = ScenarioCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("miss")
        prior = cache.stats.copy()
        cache.get("a")
        delta = cache.stats.delta(prior)
        assert delta.hits == 1
        assert delta.misses == 0
