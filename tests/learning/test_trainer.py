"""The Section VI-C epoch trainer."""

import numpy as np
import pytest

from repro.core import DynamicGame, Prices, solve_dynamic_equilibrium
from repro.exceptions import ConfigurationError
from repro.learning import PriceLearner, RLTrainer
from repro.population import FixedPopulation, GaussianPopulation


def _trainer(pop=None, **kw):
    defaults = dict(budget=200.0, reward=1000.0, fork_rate=0.2,
                    e_max=80.0, seed=5)
    defaults.update(kw)
    return RLTrainer(pop or GaussianPopulation(5, 2), **defaults)


class TestEpoch:
    def test_strategies_converge_within_50_blocks(self):
        """The paper's claim behind T=50: greedy strategies settle."""
        trainer = _trainer()
        ep = trainer.run_epoch(2.0, 1.0)
        assert ep.blocks == 50
        assert ep.mean_edge > 0
        assert ep.mean_cloud > 0

    def test_epoch_tracks_analytic_model(self):
        """Fig. 9(a): RL points sit near the model lines."""
        trainer = _trainer(grid_spend_levels=10, grid_split_levels=21)
        ep = trainer.run_epoch(2.0, 1.0)
        game = DynamicGame(GaussianPopulation(5, 2), reward=1000.0,
                           fork_rate=0.2, budget=200.0, e_max=80.0,
                           weights="capacity")
        model = solve_dynamic_equilibrium(game, Prices(2.0, 1.0))
        assert ep.mean_edge == pytest.approx(model.e, rel=0.25)
        assert ep.mean_cloud == pytest.approx(model.c, rel=0.25)

    def test_uncertainty_inflates_edge_requests(self):
        """Fig. 9(a) comparison inside the RL framework itself.

        Uses E_max=40 (hard-binding capacity: the analytic effect is ~20%)
        with fine grids, averaged over seeds so the ε-greedy floor does
        not mask the comparison.
        """
        kw = dict(e_max=40.0, grid_spend_levels=10, grid_split_levels=41)
        dyn_e, fix_e = [], []
        for seed in range(3):
            dyn = _trainer(pop=GaussianPopulation(5, 2.5), seed=seed,
                           **kw).run_epoch(2.0, 1.0)
            fix = _trainer(pop=FixedPopulation(5), seed=seed,
                           **kw).run_epoch(2.0, 1.0)
            dyn_e.append(dyn.mean_edge)
            fix_e.append(fix.mean_edge)
        assert np.mean(dyn_e) > np.mean(fix_e)

    def test_overloads_observed_in_dynamic_standalone(self):
        ep = _trainer().run_epoch(2.0, 1.0)
        assert 0.0 < ep.overload_rate < 1.0

    def test_connected_mode_epoch(self):
        trainer = _trainer(e_max=None, h=0.8)
        ep = trainer.run_epoch(2.0, 1.0)
        assert ep.overload_rate == 0.0
        assert ep.esp_units > 0

    def test_profit_helpers(self):
        ep = _trainer().run_epoch(2.0, 1.0)
        assert ep.esp_profit(0.2) == pytest.approx(1.8 * ep.esp_units)
        assert ep.csp_profit(0.1) == pytest.approx(0.9 * ep.csp_units)

    def test_validation(self):
        trainer = _trainer()
        with pytest.raises(ConfigurationError):
            trainer.run_epoch(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            RLTrainer(GaussianPopulation(5, 2), budget=0.0, reward=1.0,
                      fork_rate=0.2)
        with pytest.raises(ConfigurationError):
            RLTrainer(GaussianPopulation(5, 2), budget=1.0, reward=1.0,
                      fork_rate=0.2, blocks_per_epoch=0)


class TestTraining:
    def test_price_fixed_point_reached(self):
        trainer = _trainer()
        esp = PriceLearner(np.linspace(1.2, 3.6, 5), unit_cost=0.2, seed=1)
        csp = PriceLearner(np.linspace(0.4, 1.6, 5), unit_cost=0.1, seed=2)
        result = trainer.train(esp, csp, max_epochs=30, patience=3)
        assert result.converged
        assert result.final_p_e in esp.grid
        assert result.final_p_c in csp.grid
        assert len(result.epochs) >= 4

    def test_final_epoch_accessor(self):
        trainer = _trainer()
        esp = PriceLearner([1.0, 2.0], unit_cost=0.2)
        csp = PriceLearner([0.5, 1.0], unit_cost=0.1)
        result = trainer.train(esp, csp, max_epochs=3, patience=99)
        assert result.final_epoch is result.epochs[-1]

    def test_empty_training_rejected(self):
        trainer = _trainer()
        esp = PriceLearner([1.0, 2.0])
        csp = PriceLearner([0.5, 1.0])
        with pytest.raises(ConfigurationError):
            trainer.train(esp, csp, max_epochs=0)


class TestPriceLearner:
    def test_epoch_cycle(self):
        learner = PriceLearner([1.0, 2.0, 3.0], seed=0)
        p = learner.start_epoch()
        assert p in (1.0, 2.0, 3.0)
        learner.end_epoch(10.0)

    def test_learns_most_profitable_price(self):
        learner = PriceLearner([1.0, 2.0, 3.0], epsilon=0.3, seed=1)
        profits = {1.0: 5.0, 2.0: 9.0, 3.0: 4.0}
        rng = np.random.default_rng(0)
        for _ in range(300):
            p = learner.start_epoch()
            learner.end_epoch(profits[p] + rng.normal(0, 0.2))
        assert learner.greedy_price() == 2.0

    def test_value_table_shape(self):
        learner = PriceLearner([1.0, 2.0])
        assert learner.value_table().shape == (2, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PriceLearner([2.0])
        with pytest.raises(ConfigurationError):
            PriceLearner([2.0, 1.0])
        with pytest.raises(ConfigurationError):
            PriceLearner([-1.0, 1.0])
        learner = PriceLearner([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            learner.end_epoch(1.0)
        with pytest.raises(ConfigurationError):
            learner.current_price
