"""Bandit learners on stationary problems with known best arms."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.learning import (EpsilonGreedyLearner, SoftmaxLearner, UCBLearner)


def _train(learner, means, steps=3000, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        a = learner.select()
        learner.update(a, means[a] + rng.normal(0, 0.1))
    return learner


MEANS = np.array([0.1, 0.9, 0.4, 0.2])


class TestEpsilonGreedy:
    def test_finds_best_arm(self):
        learner = _train(EpsilonGreedyLearner(4, seed=1), MEANS)
        assert learner.greedy() == 1

    def test_epsilon_decays(self):
        learner = EpsilonGreedyLearner(4, epsilon=0.5, epsilon_decay=0.9,
                                       epsilon_min=0.05)
        for _ in range(200):
            learner.select()
        assert learner.epsilon == pytest.approx(0.05)

    def test_update_moves_value(self):
        learner = EpsilonGreedyLearner(2, step_size=0.5)
        learner.update(0, 10.0)
        assert learner.values[0] == pytest.approx(5.0)

    def test_update_all_full_information(self):
        learner = EpsilonGreedyLearner(3, step_size=1.0)
        learner.update_all(np.array([1.0, 5.0, 2.0]))
        assert learner.greedy() == 1

    def test_update_all_shape_check(self):
        learner = EpsilonGreedyLearner(3)
        with pytest.raises(ConfigurationError):
            learner.update_all(np.array([1.0, 2.0]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpsilonGreedyLearner(0)
        with pytest.raises(ConfigurationError):
            EpsilonGreedyLearner(3, epsilon=1.5)
        with pytest.raises(ConfigurationError):
            EpsilonGreedyLearner(3, step_size=0.0)

    def test_out_of_range_action(self):
        learner = EpsilonGreedyLearner(3)
        with pytest.raises(ConfigurationError):
            learner.update(5, 1.0)


class TestSoftmax:
    def test_finds_best_arm(self):
        learner = _train(SoftmaxLearner(4, seed=2), MEANS)
        assert learner.greedy() == 1

    def test_temperature_anneals(self):
        learner = SoftmaxLearner(4, temperature=1.0,
                                 temperature_decay=0.5,
                                 temperature_min=0.1)
        for _ in range(20):
            learner.select()
        assert learner.temperature == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoftmaxLearner(3, temperature=0.0)


class TestUCB:
    def test_tries_every_arm_first(self):
        learner = UCBLearner(4, seed=3)
        first = []
        for _ in range(4):
            a = learner.select()
            first.append(a)
            learner.update(a, 0.0)
        assert sorted(first) == [0, 1, 2, 3]

    def test_finds_best_arm(self):
        learner = _train(UCBLearner(4, exploration=0.5, seed=4), MEANS)
        assert learner.greedy() == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UCBLearner(3, exploration=-1.0)
