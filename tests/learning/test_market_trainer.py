"""Market-coupled RL: realized payoffs through the physical substrates."""

import pytest

from repro.exceptions import ConfigurationError
from repro.learning import MarketRLTrainer


class TestMarketRLTrainer:
    def test_connected_learns_toward_analytic_ne(self):
        """Realized-payoff learning through the real dispatcher lands in
        the neighborhood of the analytic equilibrium (e*=25.6, c*=102.4
        at these parameters), despite the Bernoulli reward noise and the
        coarse grid."""
        trainer = MarketRLTrainer(n=5, budget=200.0, reward=1000.0,
                                  fork_rate=0.2, p_e=2.0, p_c=1.0,
                                  h=0.8, seed=1)
        epoch = trainer.run_epoch(blocks=4000)
        assert 10.0 <= epoch.mean_edge <= 45.0
        assert 60.0 <= epoch.mean_cloud <= 160.0
        # Connected mode: transfers happen, rejections never.
        assert epoch.transfers > 0
        assert epoch.rejections == 0

    def test_standalone_learners_respect_capacity(self):
        """With a hard E_max the rejected-and-billed-nothing feedback
        teaches miners to stay near the capacity share."""
        trainer = MarketRLTrainer(n=5, budget=200.0, reward=1000.0,
                                  fork_rate=0.2, p_e=2.0, p_c=1.0,
                                  e_max=80.0, seed=2)
        epoch = trainer.run_epoch(blocks=4000)
        assert epoch.rejections > 0
        # Greedy edge strategies stay near/below the per-miner capacity
        # share (16 units) rather than the unconstrained level (25.6+).
        assert epoch.mean_edge <= 20.0

    def test_revenue_accounting(self):
        trainer = MarketRLTrainer(n=3, budget=100.0, reward=500.0,
                                  fork_rate=0.1, p_e=2.0, p_c=1.0,
                                  seed=3)
        epoch = trainer.run_epoch(blocks=200)
        assert epoch.esp_revenue >= 0
        assert epoch.csp_revenue > 0
        assert epoch.blocks == 200

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MarketRLTrainer(n=1, budget=100.0, reward=500.0,
                            fork_rate=0.1, p_e=2.0, p_c=1.0)
        with pytest.raises(ConfigurationError):
            MarketRLTrainer(n=3, budget=100.0, reward=500.0,
                            fork_rate=0.1, p_e=0.0, p_c=1.0)
        trainer = MarketRLTrainer(n=3, budget=100.0, reward=500.0,
                                  fork_rate=0.1, p_e=2.0, p_c=1.0)
        with pytest.raises(ConfigurationError):
            trainer.run_epoch(blocks=0)
