"""Learning miners: feedback rules and convergence to best responses."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.learning import (EpsilonGreedyLearner, LearningMiner,
                            RoundObservation, StrategyGrid)


def _grid():
    return StrategyGrid.build(200.0, 2.0, 1.0, spend_levels=8,
                              split_levels=13)


def _obs(grid, e_others=102.4, s_others=512.0, sat=1.0):
    return RoundObservation(e_others=e_others, s_others=s_others,
                            reward=1000.0, fork_rate=0.2,
                            sat_weight=np.full(grid.size, sat),
                            realized_payoff=0.0, won=False)


class TestLearningMiner:
    def test_act_returns_grid_action(self):
        miner = LearningMiner(0, _grid(), seed=0)
        idx, e, c = miner.act()
        assert (e, c) == miner.grid.action(idx)

    def test_observe_requires_act(self):
        miner = LearningMiner(0, _grid())
        with pytest.raises(ConfigurationError):
            miner.observe(_obs(miner.grid))

    def test_expected_feedback_converges_to_best_response(self):
        """Against fixed opponents, the greedy strategy approaches the
        exact best response (up to grid resolution)."""
        from repro.core.miner_best_response import (ResponseContext,
                                                    solve_best_response)
        grid = _grid()
        miner = LearningMiner(0, grid, feedback="expected", seed=1)
        obs = _obs(grid)
        for _ in range(60):
            miner.act()
            miner.observe(obs)
        e_rl, c_rl = miner.greedy_strategy()
        br = solve_best_response(
            ResponseContext(e_others=102.4, s_others=512.0),
            reward=1000.0, beta=0.2, h=1.0, p_e=2.0, p_c=1.0,
            budget=200.0)
        # Compare utilities rather than raw actions (grid resolution).
        u_rl = miner.counterfactual_utilities(obs)[
            miner.learner.greedy()]
        S = 512.0 + br.e + br.c
        E = 102.4 + br.e
        u_br = 1000.0 * (0.8 * (br.e + br.c) / S + 0.2 * br.e / E) \
            - 2.0 * br.e - 1.0 * br.c
        assert u_rl >= 0.95 * u_br

    def test_realized_feedback_updates_only_chosen(self):
        grid = _grid()
        learner = EpsilonGreedyLearner(grid.size, step_size=1.0, seed=2)
        miner = LearningMiner(0, grid, learner=learner, feedback="realized")
        idx, _, _ = miner.act()
        obs = _obs(grid)
        obs = RoundObservation(**{**obs.__dict__, "realized_payoff": 42.0})
        miner.observe(obs)
        assert learner.values[idx] == pytest.approx(42.0)
        others = np.delete(learner.values, idx)
        assert np.all(others == 0.0)

    def test_counterfactual_respects_sat_weight(self):
        grid = _grid()
        miner = LearningMiner(0, grid)
        full = miner.counterfactual_utilities(_obs(grid, sat=1.0))
        none = miner.counterfactual_utilities(_obs(grid, sat=0.0))
        # Removing the edge bonus can only lower utilities.
        assert np.all(full >= none - 1e-12)
        # And strictly so for actions with edge units.
        edge_actions = grid.actions[:, 0] > 1.0
        assert np.all(full[edge_actions] > none[edge_actions])

    def test_strategy_entropy_drops_with_convergence(self):
        grid = _grid()
        miner = LearningMiner(0, grid, feedback="expected", seed=3)
        obs = _obs(grid)
        for _ in range(200):
            miner.act()
            miner.observe(obs)
        # Entropy well below uniform over visited arms.
        assert miner.strategy_entropy() < np.log(grid.size)

    def test_validation(self):
        grid = _grid()
        with pytest.raises(ConfigurationError):
            LearningMiner(0, grid, feedback="psychic")
        with pytest.raises(ConfigurationError):
            LearningMiner(0, grid,
                          learner=EpsilonGreedyLearner(grid.size + 1))


class TestQLearningMiner:
    def test_converges_against_stationary_opponents(self):
        """In a stationary environment the per-state greedy action earns
        near-best-response utility (the Q-learner matches the bandit)."""
        from repro.learning import QLearningMiner
        import numpy as np

        grid = _grid()
        miner = QLearningMiner(0, grid, num_states=3, seed=4,
                               epsilon=0.4, epsilon_decay=0.9998,
                               epsilon_min=0.05, learning_rate=0.1,
                               discount=0.0)
        e_others, s_others = 102.4, 512.0
        obs = _obs(grid)
        ref = LearningMiner(0, grid, feedback="expected", seed=5)
        payoffs = ref.counterfactual_utilities(obs)
        miner.observe_state(e_others, s_others)
        rng = np.random.default_rng(0)
        for _ in range(12000):
            idx, e, c = miner.act()
            payoff = float(payoffs[idx]) + rng.normal(0, 1.0)
            miner.learn(payoff, e_others, s_others)
        state = miner.observe_state(e_others, s_others)
        greedy_idx = int(miner.agent.greedy_policy()[state])
        assert payoffs[greedy_idx] >= 0.93 * payoffs.max()

    def test_requires_act_before_learn(self):
        from repro.learning import QLearningMiner
        from repro.exceptions import ConfigurationError
        import pytest as _pytest

        miner = QLearningMiner(0, _grid())
        with _pytest.raises(ConfigurationError):
            miner.learn(1.0, 10.0, 50.0)

    def test_state_tracks_edge_share(self):
        from repro.learning import QLearningMiner

        miner = QLearningMiner(0, _grid(), num_states=4)
        low = miner.observe_state(0.0, 100.0)
        high = miner.observe_state(100.0, 100.0)
        assert low == 0
        assert high == 3
