"""Tabular Q-learning."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.learning import QLearningAgent, discretize_edge_share


class TestQLearningAgent:
    def test_learns_best_action_per_state(self):
        agent = QLearningAgent(2, 3, learning_rate=0.2, discount=0.0,
                               epsilon=0.3, epsilon_decay=1.0, seed=0)
        rng = np.random.default_rng(0)
        rewards = {0: [0.0, 1.0, 0.2], 1: [0.8, 0.1, 0.0]}
        for _ in range(4000):
            s = int(rng.integers(2))
            a = agent.select(s)
            agent.update(s, a, rewards[s][a] + rng.normal(0, 0.05))
        policy = agent.greedy_policy()
        assert policy[0] == 1
        assert policy[1] == 0

    def test_bootstrap_propagates_value(self):
        agent = QLearningAgent(2, 1, learning_rate=1.0, discount=0.9)
        agent.update(1, 0, 10.0)                # terminal-ish state value
        agent.update(0, 0, 0.0, next_state=1)   # bootstraps from state 1
        assert agent.q[0, 0] == pytest.approx(9.0)

    def test_epsilon_anneals(self):
        agent = QLearningAgent(1, 2, epsilon=0.5, epsilon_decay=0.5,
                               epsilon_min=0.1)
        for _ in range(10):
            agent.select(0)
        assert agent.epsilon == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QLearningAgent(0, 3)
        with pytest.raises(ConfigurationError):
            QLearningAgent(2, 3, learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            QLearningAgent(2, 3, discount=1.0)
        agent = QLearningAgent(2, 3)
        with pytest.raises(ConfigurationError):
            agent.select(5)
        with pytest.raises(ConfigurationError):
            agent.update(0, 9, 1.0)


class TestDiscretizeEdgeShare:
    def test_bins(self):
        assert discretize_edge_share(0.0, 10.0, 4) == 0
        assert discretize_edge_share(10.0, 10.0, 4) == 3
        assert discretize_edge_share(5.0, 10.0, 4) == 2

    def test_degenerate_total(self):
        assert discretize_edge_share(1.0, 0.0, 4) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            discretize_edge_share(1.0, 2.0, 0)
