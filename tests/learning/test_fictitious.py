"""Fictitious play on the miner subgame."""

import numpy as np
import pytest

from repro.core import solve_connected_equilibrium
from repro.exceptions import ConfigurationError
from repro.learning import fictitious_play


class TestFictitiousPlay:
    def test_converges_to_unique_ne(self, connected_params, prices):
        fp = fictitious_play(connected_params, prices, rounds=400)
        eq = solve_connected_equilibrium(connected_params, prices)
        assert np.allclose(fp.e, eq.e, atol=5e-3)
        assert np.allclose(fp.c, eq.c, atol=5e-3)

    def test_heterogeneous_budgets(self, heterogeneous_params, prices):
        # Belief averaging converges O(1/t): looser tolerance than the
        # homogeneous case, tightened by more rounds.
        fp = fictitious_play(heterogeneous_params, prices, rounds=400)
        eq = solve_connected_equilibrium(heterogeneous_params, prices)
        assert np.allclose(fp.e, eq.e, atol=0.1)
        assert np.allclose(fp.c, eq.c, atol=0.3)

    def test_beliefs_consistent_at_limit(self, connected_params, prices):
        fp = fictitious_play(connected_params, prices, rounds=400)
        E = float(np.sum(fp.e))
        S = E + float(np.sum(fp.c))
        for i in range(connected_params.n):
            assert fp.beliefs_e[i] == pytest.approx(E - fp.e[i], abs=0.05)
            assert fp.beliefs_s[i] == pytest.approx(
                S - fp.e[i] - fp.c[i], abs=0.15)

    def test_trajectory_recorded(self, connected_params, prices):
        fp = fictitious_play(connected_params, prices, rounds=30, tol=1e-300)
        assert len(fp.trajectory) == 30
        E, C = fp.trajectory[-1]
        assert E > 0 and C > 0

    def test_respects_budgets(self, connected_params, prices):
        fp = fictitious_play(connected_params, prices, rounds=100)
        spend = prices.p_e * fp.e + prices.p_c * fp.c
        assert np.all(spend <= connected_params.budget_array * (1 + 1e-9))

    def test_validation(self, connected_params, prices):
        with pytest.raises(ConfigurationError):
            fictitious_play(connected_params, prices, rounds=0)
        with pytest.raises(ConfigurationError):
            fictitious_play(connected_params, prices,
                            initial=(np.ones(2), np.ones(2)))
