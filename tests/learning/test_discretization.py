"""Strategy grids."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.learning import StrategyGrid


class TestStrategyGrid:
    def test_all_actions_feasible(self):
        grid = StrategyGrid.build(200.0, 2.0, 1.0)
        assert grid.feasible()

    def test_contains_zero_and_extremes(self):
        grid = StrategyGrid.build(100.0, 2.0, 1.0, spend_levels=4,
                                  split_levels=5)
        actions = grid.actions
        assert any(np.allclose(a, [0.0, 0.0]) for a in actions)
        assert any(np.allclose(a, [50.0, 0.0]) for a in actions)
        assert any(np.allclose(a, [0.0, 100.0]) for a in actions)

    def test_size_and_lookup(self):
        grid = StrategyGrid.build(100.0, 2.0, 1.0, spend_levels=3,
                                  split_levels=4)
        assert grid.size == len(grid.actions)
        e, c = grid.action(0)
        assert isinstance(e, float) and isinstance(c, float)

    def test_nearest(self):
        grid = StrategyGrid.build(100.0, 2.0, 1.0)
        idx = grid.nearest(0.0, 0.0)
        assert np.allclose(grid.actions[idx], [0.0, 0.0])

    def test_no_duplicate_actions(self):
        grid = StrategyGrid.build(100.0, 2.0, 1.0, spend_levels=6,
                                  split_levels=11)
        rows = {tuple(a) for a in grid.actions}
        assert len(rows) == grid.size

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StrategyGrid.build(0.0, 2.0, 1.0)
        with pytest.raises(ConfigurationError):
            StrategyGrid.build(100.0, 2.0, 1.0, spend_levels=0)
        with pytest.raises(ConfigurationError):
            StrategyGrid.build(100.0, 2.0, 1.0, split_levels=1)
