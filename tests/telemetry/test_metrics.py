"""Metrics primitives: counters, gauges, histograms, and the registry."""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                             MetricsRegistry)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0.0

    def test_inc_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10.0)
        g.inc(5.0)
        g.dec(3.0)
        assert g.value == 12.0

    def test_can_go_negative(self):
        g = Gauge()
        g.dec(2.0)
        assert g.value == -2.0


class TestHistogram:
    def test_empty_quantiles_nan(self):
        h = Histogram()
        assert math.isnan(h.p50)
        assert math.isnan(h.mean)

    def test_counts_land_in_buckets(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)

    def test_boundary_value_goes_to_its_bucket(self):
        # Prometheus buckets are inclusive upper bounds: le="1.0".
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts[0] == 1

    def test_quantile_interpolates(self):
        h = Histogram(buckets=(0.0, 10.0))
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0):
            h.observe(v)
        # All ten observations sit in the (0, 10] bucket: interpolation
        # maps the median to the bucket midpoint.
        assert h.p50 == pytest.approx(5.0)
        assert h.p99 == pytest.approx(9.9)

    def test_overflow_clamps_to_last_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(1000.0)
        assert h.p50 == 1.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    @given(st.lists(st.floats(min_value=1e-6, max_value=25.0),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_quantile_monotone_and_bounded(self, values):
        h = Histogram(DEFAULT_BUCKETS)
        for v in values:
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert all(a <= b + 1e-12 for a, b in zip(qs, qs[1:]))
        assert all(0.0 <= q <= DEFAULT_BUCKETS[-1] for q in qs)
        assert h.count == len(values)


class TestMetricsRegistry:
    def test_create_or_get_returns_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_labels_fan_out_children(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"k": "1"})
        b = reg.counter("x_total", labels={"k": "2"})
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"a": "1", "b": "2"})
        b = reg.counter("x_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(3)
        reg.gauge("g", "a gauge").set(7.0)
        hist = reg.histogram("h_seconds", "a histogram",
                             buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        snap = reg.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["values"][0]["value"] == 3.0
        assert snap["g"]["values"][0]["value"] == 7.0
        entry = snap["h_seconds"]["values"][0]
        assert entry["count"] == 2
        assert entry["buckets"]["+Inf"] == 2
        assert entry["buckets"][repr(1.0)] == 1  # cumulative

    def test_reset_clears_families(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        reg.reset()
        assert reg.snapshot() == {}

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(500):
                reg.counter("shared_total").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Creation races must not lose the family or fork children.
        assert len(reg.families()) == 1
