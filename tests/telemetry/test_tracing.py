"""Span tracer: nesting, durations, bounds, and the no-op path."""

import threading

from repro.telemetry import NULL_SPAN, NullSpan, Tracer


class TestTracer:
    def test_single_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("solve", n=5) as sp:
            sp.set(result="ok")
        roots = tracer.roots
        assert len(roots) == 1
        assert roots[0].name == "solve"
        assert roots[0].duration is not None and roots[0].duration >= 0
        assert roots[0].attrs == {"n": 5, "result": "ok"}

    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        roots = tracer.roots
        assert len(roots) == 1
        assert [c.name for c in roots[0].children] == ["inner.a",
                                                       "inner.b"]

    def test_tree_and_render(self):
        tracer = Tracer()
        with tracer.span("outer", size=2):
            with tracer.span("inner"):
                pass
        forest = tracer.tree()
        assert forest[0]["name"] == "outer"
        assert forest[0]["children"][0]["name"] == "inner"
        text = tracer.render()
        assert "outer" in text and "  inner" in text
        assert "size=2" in text

    def test_max_roots_bound(self):
        tracer = Tracer(max_roots=3)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [r.name for r in tracer.roots]
        assert names == ["s7", "s8", "s9"]

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.roots == []

    def test_threads_do_not_cross_nest(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots
        # Concurrent spans on different threads are siblings (two
        # roots), never parent/child.
        assert len(roots) == 2
        assert all(not r.children for r in roots)


class TestNullSpan:
    def test_is_shared_noop(self):
        assert isinstance(NULL_SPAN, NullSpan)
        with NULL_SPAN as sp:
            assert sp.set(anything=1) is sp

    def test_set_returns_self_for_chaining(self):
        assert NULL_SPAN.set(a=1).set(b=2) is NULL_SPAN
