"""The zero-overhead contract: telemetry off must cost (almost) nothing.

Three layers of proof:

1. **Golden values** — with telemetry disabled (the default), solver
   outputs are bit-identical to the values captured *before* the
   instrumentation existed (``tests/golden/solver_golden.json``, stored
   as ``float.hex()``). Bit-identity is only meaningful on the numpy /
   scipy versions the goldens were captured with; on other versions the
   comparison degrades to a tight relative tolerance.
2. **On/off equivalence** — enabling telemetry must not perturb a
   single bit of any solver output, on every environment.
3. **Seam cost** — the per-iteration price of a disabled seam (one
   attribute check plus one ``is not None`` check) is under 5% of one
   real VI iteration of the benchmark smoke case.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest
import scipy

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium,
                        solve_stackelberg, solve_standalone_equilibrium)
from repro.core.gnep import solve_standalone_extragradient
from repro.telemetry import get_telemetry, telemetry_session

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / \
    "solver_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
ENV_MATCHES = (GOLDEN["env"]["numpy"] == np.__version__
               and GOLDEN["env"]["scipy"] == scipy.__version__)

PRICES = Prices(p_e=2.0, p_c=1.0)


def connected_params():
    return homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)


def standalone_params():
    return homogeneous(5, 1000.0, reward=1000.0, fork_rate=0.2,
                       mode=EdgeMode.STANDALONE, e_max=80.0)


def hexf(x):
    return float(x).hex()


def hexa(a):
    return [float(v).hex() for v in np.asarray(a, float)]


def assert_matches_golden(actual_hex, golden_hex, rel=1e-9):
    """Bit-identical on the capture environment, rel-tol elsewhere."""
    if isinstance(actual_hex, list):
        assert len(actual_hex) == len(golden_hex)
        for a, g in zip(actual_hex, golden_hex):
            assert_matches_golden(a, g, rel=rel)
        return
    if ENV_MATCHES:
        assert actual_hex == golden_hex
    else:
        a = float.fromhex(actual_hex)
        g = float.fromhex(golden_hex)
        assert a == pytest.approx(g, rel=rel, abs=1e-12)


class TestGoldenValues:
    """Disabled telemetry reproduces the pre-instrumentation outputs."""

    def test_telemetry_is_off(self):
        assert not get_telemetry().enabled

    def test_stackelberg_connected(self):
        se = solve_stackelberg(connected_params())
        gold = GOLDEN["stackelberg_connected"]
        assert_matches_golden(hexf(se.prices.p_e), gold["p_e"])
        assert_matches_golden(hexf(se.prices.p_c), gold["p_c"])
        assert_matches_golden(hexf(se.v_e), gold["v_e"])
        assert_matches_golden(hexf(se.v_c), gold["v_c"])
        assert_matches_golden(hexa(se.miners.e), gold["e"])
        assert_matches_golden(hexa(se.miners.c), gold["c"])

    def test_stackelberg_standalone(self):
        se = solve_stackelberg(standalone_params())
        gold = GOLDEN["stackelberg_standalone"]
        assert_matches_golden(hexf(se.prices.p_e), gold["p_e"])
        assert_matches_golden(hexf(se.prices.p_c), gold["p_c"])
        assert_matches_golden(hexf(se.v_e), gold["v_e"])
        assert_matches_golden(hexf(se.v_c), gold["v_c"])
        assert_matches_golden(hexa(se.miners.e), gold["e"])
        assert_matches_golden(hexa(se.miners.c), gold["c"])

    def test_gnep_standalone(self):
        eq = solve_standalone_equilibrium(standalone_params(), PRICES)
        gold = GOLDEN["gnep_standalone"]
        assert_matches_golden(hexa(eq.e), gold["e"])
        assert_matches_golden(hexa(eq.c), gold["c"])
        assert_matches_golden(hexf(eq.nu), gold["nu"])

    def test_nep_connected(self):
        eq = solve_connected_equilibrium(connected_params(), PRICES)
        gold = GOLDEN["nep_connected"]
        assert_matches_golden(hexa(eq.e), gold["e"])
        assert_matches_golden(hexa(eq.c), gold["c"])


class TestOnOffEquivalence:
    """Enabling telemetry never changes a bit of any solver output.

    Unlike the golden tests this holds on every numpy/scipy version:
    both runs happen in-process, so the comparison is exact.
    """

    def test_stackelberg_bit_identical(self):
        off = solve_stackelberg(connected_params())
        with telemetry_session():
            on = solve_stackelberg(connected_params())
        assert hexf(off.prices.p_e) == hexf(on.prices.p_e)
        assert hexf(off.prices.p_c) == hexf(on.prices.p_c)
        assert hexf(off.v_e) == hexf(on.v_e)
        assert hexa(off.miners.e) == hexa(on.miners.e)
        assert hexa(off.miners.c) == hexa(on.miners.c)

    def test_gnep_decomposition_bit_identical(self):
        off = solve_standalone_equilibrium(standalone_params(), PRICES)
        with telemetry_session():
            on = solve_standalone_equilibrium(standalone_params(),
                                              PRICES)
        assert hexa(off.e) == hexa(on.e)
        assert hexa(off.c) == hexa(on.c)
        assert hexf(off.nu) == hexf(on.nu)

    def test_vi_extragradient_bit_identical(self):
        off = solve_standalone_extragradient(standalone_params(), PRICES)
        with telemetry_session():
            on = solve_standalone_extragradient(standalone_params(),
                                                PRICES)
        assert hexa(off.e) == hexa(on.e)
        assert hexa(off.c) == hexa(on.c)
        assert off.report.iterations == on.report.iterations
        assert off.report.history == on.report.history

    def test_multiscenario_batch_bit_identical(self):
        # The batched kernel's histogram/gauge seams and the serving
        # fan-out counters must never perturb solver output.
        from repro.kernels import solve_connected_multiscenario

        scenarios = [(connected_params(),
                      Prices(p_e=2.0, p_c=0.8 + 0.1 * k))
                     for k in range(5)]
        off = solve_connected_multiscenario(scenarios)
        with telemetry_session():
            on = solve_connected_multiscenario(scenarios)
        for a, b in zip(off, on):
            assert hexa(a.e) == hexa(b.e)
            assert hexa(a.c) == hexa(b.c)
            assert a.report.iterations == b.report.iterations


class TestSeamOverhead:
    """The disabled seam is <5% of a real VI iteration's cost."""

    def test_disabled_seam_under_budget(self):
        # Per-iteration solver cost on the benchmark smoke case
        # (bench_solver_performance.py's GNEP decomposition setup,
        # solved through the instrumented VI loop).
        params = standalone_params()
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            eq = solve_standalone_extragradient(params, PRICES)
            best = min(best, time.perf_counter() - t0)
        per_iteration = best / max(eq.report.iterations, 1)

        # The seam the VI loop pays per iteration when disabled: the
        # hoisted histogram is None, so the loop body adds exactly one
        # `is not None` check; the per-solve `_TEL.enabled` reads are
        # amortized across all iterations and measured here as one
        # attribute read per iteration (an overestimate).
        tel = get_telemetry()
        hist = tel.metrics if tel.enabled else None
        reps = 200_000
        t0 = time.perf_counter()
        for _ in range(reps):
            if hist is not None:
                raise AssertionError("telemetry unexpectedly enabled")
            if tel.enabled:
                raise AssertionError("telemetry unexpectedly enabled")
        seam = (time.perf_counter() - t0) / reps

        assert seam < 0.05 * per_iteration, (
            f"disabled seam costs {seam:.3e}s vs "
            f"{per_iteration:.3e}s per VI iteration "
            f"({100 * seam / per_iteration:.2f}% > 5%)")
