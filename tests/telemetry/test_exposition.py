"""Exposition formats: JSON/Prometheus rendering and the strict parser."""

import json

import pytest

from repro.telemetry import (MetricsRegistry, parse_prometheus,
                             render_json, render_prometheus)


def _populated_registry():
    reg = MetricsRegistry()
    reg.counter("solves_total", "Completed solves",
                labels={"solver": "adaptive"}).inc(3)
    reg.counter("solves_total", labels={"solver": "extragradient"}).inc()
    reg.gauge("cache_entries", "Live cache entries").set(42.0)
    hist = reg.histogram("latency_seconds", "Solve latency",
                         buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return reg


class TestRenderJson:
    def test_is_valid_json_with_all_families(self):
        doc = json.loads(render_json(_populated_registry()))
        assert set(doc) == {"solves_total", "cache_entries",
                            "latency_seconds"}
        assert doc["latency_seconds"]["values"][0]["count"] == 3


class TestRenderPrometheus:
    def test_help_and_type_lines(self):
        text = render_prometheus(_populated_registry())
        assert "# HELP solves_total Completed solves" in text
        assert "# TYPE solves_total counter" in text
        assert "# TYPE latency_seconds histogram" in text
        assert text.endswith("\n")

    def test_labeled_counter_samples(self):
        text = render_prometheus(_populated_registry())
        assert 'solves_total{solver="adaptive"} 3.0' in text
        assert 'solves_total{solver="extragradient"} 1.0' in text

    def test_histogram_expansion_is_cumulative(self):
        samples = parse_prometheus(
            render_prometheus(_populated_registry()))
        by_le = {s["labels"]["le"]: s["value"] for s in samples
                 if s["name"] == "latency_seconds_bucket"}
        assert by_le["0.1"] == 1
        assert by_le["1.0"] == 2
        assert by_le["+Inf"] == 3
        count = [s for s in samples
                 if s["name"] == "latency_seconds_count"][0]
        assert count["value"] == 3

    def test_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels={"msg": 'a"b\\c'}).inc()
        text = render_prometheus(reg)
        samples = parse_prometheus(text)
        assert samples[0]["labels"]["msg"] == r"a\"b\\c"


class TestParsePrometheus:
    def test_round_trip_every_sample(self):
        reg = _populated_registry()
        samples = parse_prometheus(render_prometheus(reg))
        # 2 counters + 1 gauge + (2 finite + Inf buckets + sum + count)
        assert len(samples) == 8
        names = {s["name"] for s in samples}
        assert "cache_entries" in names

    def test_accepts_comments_and_blanks(self):
        assert parse_prometheus("# a comment\n\nx_total 1\n") == [
            {"name": "x_total", "labels": {}, "value": 1.0}]

    def test_special_values(self):
        import math
        samples = parse_prometheus("a +Inf\nb -Inf\nc NaN\n")
        assert samples[0]["value"] == math.inf
        assert samples[1]["value"] == -math.inf
        assert math.isnan(samples[2]["value"])

    def test_rejects_garbage_line(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a metric\n")

    def test_rejects_garbage_value(self):
        with pytest.raises(ValueError):
            parse_prometheus("x_total banana\n")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError):
            parse_prometheus('x_total{oops} 1\n')
