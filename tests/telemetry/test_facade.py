"""The global Telemetry facade: switch semantics and seam behavior."""

import json

from repro.telemetry import (NULL_SPAN, TELEMETRY, Telemetry, disable,
                             enable, get_telemetry, telemetry_enabled,
                             telemetry_session)


class TestFacade:
    def test_disabled_by_default(self):
        assert Telemetry().enabled is False

    def test_global_is_disabled_outside_sessions(self):
        assert telemetry_enabled() is False
        assert get_telemetry() is TELEMETRY

    def test_span_is_null_when_disabled(self):
        tel = Telemetry(enabled=False)
        assert tel.span("anything") is NULL_SPAN

    def test_span_is_real_when_enabled(self):
        tel = Telemetry(enabled=True)
        with tel.span("solve") as sp:
            assert sp is not NULL_SPAN
        assert tel.tracer.roots[0].name == "solve"

    def test_emit_gated_on_switch(self):
        tel = Telemetry(enabled=False)
        tel.emit("dropped")
        assert len(tel.events) == 0
        tel.enabled = True
        tel.emit("kept")
        assert len(tel.events) == 1

    def test_reset_clears_all_three(self):
        tel = Telemetry(enabled=True)
        tel.metrics.counter("x_total").inc()
        with tel.span("s"):
            pass
        tel.emit("e")
        tel.reset()
        assert tel.metrics.snapshot() == {}
        assert tel.tracer.roots == []
        assert len(tel.events) == 0


class TestEnableDisable:
    def test_enable_disable_flip_global(self):
        try:
            enable()
            assert telemetry_enabled()
        finally:
            disable()
        assert not telemetry_enabled()

    def test_enable_reset_clears_prior_data(self):
        try:
            enable()
            TELEMETRY.metrics.counter("stale_total").inc()
            enable(reset=True)
            assert TELEMETRY.metrics.snapshot() == {}
        finally:
            disable()


class TestTelemetrySession:
    def test_restores_prior_switch(self):
        assert not telemetry_enabled()
        with telemetry_session():
            assert telemetry_enabled()
        assert not telemetry_enabled()

    def test_data_survives_the_block(self):
        with telemetry_session() as tel:
            tel.metrics.counter("x_total").inc(2)
        assert tel.metrics.counter("x_total").value == 2.0

    def test_fresh_window_by_default(self):
        with telemetry_session() as tel:
            tel.metrics.counter("first_total").inc()
        with telemetry_session() as tel:
            assert "first_total" not in tel.metrics.snapshot()

    def test_event_path_bound_for_the_block(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with telemetry_session(event_path=path) as tel:
            tel.emit("inside")
        tel.events.emit("outside")  # unbound after the block
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [e["kind"] for e in lines] == ["inside"]

    def test_nested_sessions_restore_correctly(self):
        with telemetry_session():
            with telemetry_session(reset=False):
                assert telemetry_enabled()
            assert telemetry_enabled()  # outer still live
        assert not telemetry_enabled()
