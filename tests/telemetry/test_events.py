"""Event log: ring buffer, sequencing, and the JSON-lines file sink."""

import json

from repro.telemetry import EventLog


class TestEventLog:
    def test_emit_assigns_sequence_and_kind(self):
        log = EventLog()
        first = log.emit("solver.fallback", solver="adaptive")
        second = log.emit("cache.evict")
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["kind"] == "solver.fallback"
        assert first["solver"] == "adaptive"

    def test_ring_buffer_drops_oldest(self):
        log = EventLog(maxlen=3)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 3
        assert [e["i"] for e in log.tail()] == [2, 3, 4]

    def test_tail_n(self):
        log = EventLog()
        for i in range(4):
            log.emit("e", i=i)
        assert [e["i"] for e in log.tail(2)] == [2, 3]

    def test_to_jsonl_round_trips(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y="two")
        lines = log.to_jsonl().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [p["kind"] for p in parsed] == ["a", "b"]

    def test_bound_file_receives_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        log.emit("fault.injected", kind_detail="esp-outage")
        log.emit("retry.exhausted")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "fault.injected"

    def test_bind_touches_file(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        EventLog(path=path)
        assert path.exists()

    def test_unbind_stops_writing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        log.emit("a")
        log.unbind()
        log.emit("b")
        assert len(path.read_text().splitlines()) == 1
        assert len(log) == 2  # in-memory buffer keeps going

    def test_reset_clears_buffer_not_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=path)
        log.emit("a")
        log.reset()
        assert len(log) == 0
        assert len(path.read_text().splitlines()) == 1
