"""Example scripts: importable, documented, and (the fast ones) runnable.

The examples are user-facing documentation; a broken example is a broken
README. Fast examples run end-to-end here; the slower simulation demos
are compile+import checked (their components are covered by their own
test modules).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart", "permissioned_network"]


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert set(FAST_EXAMPLES) <= set(ALL_EXAMPLES)
        assert len(ALL_EXAMPLES) >= 5

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None)), \
            f"example {name} must define main()"
        assert module.__doc__, f"example {name} must have a docstring"
        assert "Run:" in module.__doc__

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_examples_run(self, name, capsys):
        module = _load(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 5
