"""Retry/backoff: hypothesis properties + retry_call semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (ConfigurationError, ConvergenceError,
                              TransientProviderError)
from repro.resilience import RetryPolicy, retry_call

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_delay=st.floats(min_value=1e-3, max_value=1.0,
                         allow_nan=False, allow_infinity=False),
    max_delay=st.floats(min_value=1.0, max_value=60.0,
                        allow_nan=False, allow_infinity=False),
    jitter=st.sampled_from(["decorrelated", "full", "none"]),
)


class TestBackoffProperties:
    @given(policy=policies, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=200, deadline=None)
    def test_delays_stay_within_base_and_cap(self, policy, seed):
        delays = list(policy.delays(seed))
        assert len(delays) == policy.max_attempts - 1
        for d in delays:
            assert policy.base_delay <= d <= policy.max_delay

    @given(policy=policies, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_schedule_is_seed_deterministic(self, policy, seed):
        assert list(policy.delays(seed)) == list(policy.delays(seed))

    @given(policy=policies, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_attempts_never_exceed_policy_maximum(self, policy, seed):
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientProviderError("boom")

        outcome = retry_call(always_fails, policy, seed=seed,
                             swallow=True)
        assert not outcome.succeeded
        assert outcome.attempts == len(calls) == policy.max_attempts
        assert outcome.retries == policy.max_attempts - 1

    def test_no_jitter_is_pure_doubling(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                             max_delay=100.0, jitter="none")
        assert list(policy.delays(0)) == pytest.approx([0.1, 0.2, 0.4, 0.8])


class TestRetryCall:
    def test_success_first_try(self):
        outcome = retry_call(lambda: 42, RetryPolicy())
        assert outcome.succeeded and outcome.value == 42
        assert outcome.attempts == 1 and outcome.retries == 0
        assert outcome.total_delay == 0.0

    def test_recovers_after_transient_failures(self):
        state = {"left": 2}

        def flaky():
            if state["left"] > 0:
                state["left"] -= 1
                raise TransientProviderError("transient")
            return "ok"

        outcome = retry_call(flaky, RetryPolicy(max_attempts=5), seed=1)
        assert outcome.succeeded and outcome.value == "ok"
        assert outcome.attempts == 3
        assert len(outcome.delays) == 2
        assert outcome.total_delay == pytest.approx(sum(outcome.delays))

    def test_exhaustion_reraises_by_default(self):
        def always_fails():
            raise TransientProviderError("down", provider="csp")

        with pytest.raises(TransientProviderError):
            retry_call(always_fails, RetryPolicy(max_attempts=2))

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def crash():
            calls.append(1)
            raise ConvergenceError("not transient")

        with pytest.raises(ConvergenceError):
            retry_call(crash, RetryPolicy(max_attempts=5))
        assert len(calls) == 1

    def test_deadline_cuts_the_attempt_budget(self):
        policy = RetryPolicy(max_attempts=10, base_delay=1.0,
                             max_delay=1.0, deadline=2.5, jitter="none")

        def always_fails():
            raise TransientProviderError("down")

        outcome = retry_call(always_fails, policy, swallow=True)
        # Delays are 1.0 each; the third would push the total past 2.5.
        assert outcome.attempts == 3
        assert outcome.total_delay <= 2.5

    def test_on_retry_hook_sees_each_failure(self):
        seen = []

        def always_fails():
            raise TransientProviderError("down")

        retry_call(always_fails, RetryPolicy(max_attempts=3),
                   on_retry=lambda n, ex: seen.append(n), swallow=True)
        assert seen == [1, 2, 3]

    def test_sleep_hook_receives_the_delays(self):
        slept = []
        state = {"left": 2}

        def flaky():
            if state["left"] > 0:
                state["left"] -= 1
                raise TransientProviderError("transient")
            return "ok"

        outcome = retry_call(flaky, RetryPolicy(max_attempts=5), seed=7,
                             sleep=slept.append)
        assert slept == outcome.delays


class TestPolicyValidation:
    def test_bad_attempts(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)

    def test_bad_base(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=0.0)

    def test_cap_below_base(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    def test_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter="quantum")
