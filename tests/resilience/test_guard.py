"""SolverGuard: residual classification, fallback chains, deadlines."""

import numpy as np
import pytest

from repro.core import Prices, homogeneous, solve_connected_equilibrium
from repro.exceptions import ConvergenceError
from repro.game import ConvergenceReport, classify_residuals
from repro.resilience import (FallbackStep, SolverGuard,
                              guarded_miner_equilibrium,
                              guarded_stackelberg)


class TestClassifyResiduals:
    def test_empty(self):
        assert classify_residuals([], 1e-6) == "empty"

    def test_converged(self):
        assert classify_residuals([1.0, 0.1, 1e-9], 1e-6) == "converged"

    def test_diverging(self):
        hist = [1.0 * (1.5 ** k) for k in range(20)]
        assert classify_residuals(hist, 1e-6) == "diverging"

    def test_oscillating_two_cycle(self):
        hist = [1.0, 2.0] * 10
        assert classify_residuals(hist, 1e-6) == "oscillating"

    def test_stalled_plateau(self):
        hist = [1.0 / (k + 1) for k in range(10)] + [0.1] * 10
        assert classify_residuals(hist, 1e-6) == "stalled"

    def test_invalid_nan(self):
        assert classify_residuals([1.0, float("nan")], 1e-6) == "invalid"


def _report(converged, history, tol=1e-6):
    return ConvergenceReport(converged=converged, iterations=len(history),
                             residual=history[-1] if history else 0.0,
                             tolerance=tol, history=list(history))


class _FakeResult:
    def __init__(self, e, c, report):
        self.e = np.asarray(e, dtype=float)
        self.c = np.asarray(c, dtype=float)
        self.report = report


class TestSolverGuard:
    def test_primary_success_returns_value_unmodified(self):
        result = _FakeResult([1.0], [2.0], _report(True, [1e-9]))
        guarded = SolverGuard().run([FallbackStep("primary",
                                                  lambda: result)])
        assert guarded.value is result
        assert guarded.solver == "primary"
        assert not guarded.degraded
        assert guarded.fallbacks_used == ()

    def test_nan_result_trips_fallback(self):
        bad = _FakeResult([float("nan")], [1.0], _report(True, [1e-9]))
        good = _FakeResult([1.0], [1.0], _report(True, [1e-9]))
        guarded = SolverGuard().run([
            FallbackStep("primary", lambda: bad),
            FallbackStep("backup", lambda: good)])
        assert guarded.value is good
        assert guarded.degraded
        assert guarded.fallbacks_used == ("primary",)
        assert "non-finite" in guarded.failures["primary"]

    def test_diverging_residuals_trip_fallback(self):
        hist = [1.0 * (2.0 ** k) for k in range(15)]
        bad = _FakeResult([1.0], [1.0], _report(False, hist))
        good = _FakeResult([1.0], [1.0], _report(True, [1e-9]))
        guarded = SolverGuard().run([
            FallbackStep("primary", lambda: bad),
            FallbackStep("backup", lambda: good)])
        assert guarded.solver == "backup"
        assert "diverging" in guarded.failures["primary"]

    def test_raised_repro_error_trips_fallback(self):
        good = _FakeResult([1.0], [1.0], _report(True, [1e-9]))

        def explode():
            raise ConvergenceError("nope")

        guarded = SolverGuard().run([
            FallbackStep("primary", explode),
            FallbackStep("backup", lambda: good)])
        assert guarded.solver == "backup"
        assert "ConvergenceError" in guarded.failures["primary"]

    def test_stalled_result_accepted_but_degraded(self):
        stalled = _FakeResult([1.0], [1.0],
                              _report(False, [0.5] * 30, tol=1e-9))
        guarded = SolverGuard().run([FallbackStep("primary",
                                                  lambda: stalled)])
        assert guarded.value is stalled
        assert guarded.degraded
        assert guarded.diagnosis == "stalled"

    def test_stalled_rejected_when_configured(self):
        stalled = _FakeResult([1.0], [1.0],
                              _report(False, [0.5] * 30, tol=1e-9))
        good = _FakeResult([1.0], [1.0], _report(True, [1e-12], tol=1e-9))
        guard = SolverGuard(accept_stalled=False)
        guarded = guard.run([FallbackStep("primary", lambda: stalled),
                             FallbackStep("backup", lambda: good)])
        assert guarded.solver == "backup"

    def test_all_fail_raises_convergence_error(self):
        def explode():
            raise ConvergenceError("nope")

        with pytest.raises(ConvergenceError) as exc:
            SolverGuard().run([FallbackStep("a", explode),
                               FallbackStep("b", explode)])
        assert "a:" in str(exc.value) and "b:" in str(exc.value)

    def test_salvage_returns_best_flawed_result_when_chain_dries_up(self):
        hist = [1.0, 2.0] * 10
        oscillating = _FakeResult([1.0], [1.0], _report(False, hist))

        def explode():
            raise ConvergenceError("nope")

        guarded = SolverGuard().run([
            FallbackStep("primary", lambda: oscillating),
            FallbackStep("backup", explode)])
        assert guarded.value is oscillating
        assert guarded.degraded

    def test_deadline_skips_remaining_steps(self):
        clock = {"t": 0.0}

        def tick():
            clock["t"] += 10.0
            return clock["t"]

        good = _FakeResult([1.0], [1.0], _report(True, [1e-9]))
        hist = [1.0 * (2.0 ** k) for k in range(15)]
        bad = _FakeResult([1.0], [1.0], _report(False, hist))
        guard = SolverGuard(deadline=5.0, clock=tick)
        guarded = guard.run([FallbackStep("primary", lambda: bad),
                             FallbackStep("slow-backup", lambda: good)])
        # The backup was skipped (deadline), so the flawed primary result
        # is salvaged rather than raising.
        assert guarded.value is bad
        assert guarded.degraded
        assert "deadline" in guarded.failures["slow-backup"]


class TestGuardedConvenienceSolvers:
    def test_guarded_miner_matches_plain_solver_bit_for_bit(self):
        params = homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2,
                             h=0.8)
        prices = Prices(p_e=2.0, p_c=1.0)
        plain = solve_connected_equilibrium(params, prices)
        guarded = guarded_miner_equilibrium(params, prices)
        assert guarded.solver == "nep-best-response"
        assert not guarded.degraded
        assert np.array_equal(guarded.value.e, plain.e)
        assert np.array_equal(guarded.value.c, plain.c)

    def test_guarded_standalone_chain(self):
        from repro.core import EdgeMode
        params = homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2,
                             ).with_mode(EdgeMode.STANDALONE, e_max=40.0)
        guarded = guarded_miner_equilibrium(params, Prices(2.0, 1.0))
        assert guarded.solver == "gnep-decomposition"
        assert guarded.value.total_edge <= 40.0 * (1 + 1e-6)

    def test_guarded_stackelberg_matches_plain(self):
        from repro.core import solve_stackelberg
        params = homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2,
                             h=0.8, edge_cost=0.2, cloud_cost=0.1)
        plain = solve_stackelberg(params)
        guarded = guarded_stackelberg(params)
        assert guarded.solver == "stackelberg-anticipating"
        assert guarded.value.prices == plain.prices
