"""The chaos suite: end-to-end resilient pipeline acceptance tests."""

import numpy as np

from repro.core import EdgeMode, homogeneous, solve_stackelberg
from repro.resilience import (CspLatencySpike, DegradationReport,
                              EspOutage, FaultPlan, TransientFaults,
                              all_cloud_equilibrium,
                              run_resilient_pipeline)


def _params(**overrides):
    defaults = dict(reward=1500.0, fork_rate=0.2, h=0.8,
                    edge_cost=0.2, cloud_cost=0.1)
    defaults.update(overrides)
    return homogeneous(5, 200.0, **defaults)


CHAOS_PLAN = FaultPlan(
    faults=(EspOutage(start=2, stop=5),
            TransientFaults(rate=0.3, target="csp"),
            CspLatencySpike(start=6, stop=8, factor=3.0)),
    seed=7)


class TestChaosSuite:
    def test_full_pipeline_completes_under_faults(self):
        out = run_resilient_pipeline(_params(), CHAOS_PLAN, n_rounds=10,
                                     seed=3)
        assert len(out.rounds) == 10
        assert out.report.degraded
        kinds = {f.kind for f in out.report.faults}
        assert "esp-outage" in kinds
        assert "transient-csp" in kinds
        assert "csp-latency-spike" in kinds
        assert out.report.retries > 0

    def test_report_names_every_outage_round(self):
        out = run_resilient_pipeline(_params(), CHAOS_PLAN, n_rounds=10,
                                     seed=3)
        outage_rounds = sorted(f.round for f in out.report.faults
                               if f.kind == "esp-outage")
        assert outage_rounds == [2, 3, 4]

    def test_same_seed_produces_identical_reports(self):
        a = run_resilient_pipeline(_params(), CHAOS_PLAN, n_rounds=10,
                                   seed=3)
        b = run_resilient_pipeline(_params(), CHAOS_PLAN, n_rounds=10,
                                   seed=3)
        assert a.report == b.report
        assert a.report.to_dict() == b.report.to_dict()
        assert [r.winner for r in a.rounds] == [r.winner for r in b.rounds]
        assert a.esp_revenue == b.esp_revenue
        assert a.csp_revenue == b.csp_revenue

    def test_zero_fault_plan_is_bit_identical_to_unguarded_path(self):
        params = _params()
        out = run_resilient_pipeline(params, FaultPlan.none(),
                                     n_rounds=5, seed=1)
        se = solve_stackelberg(params)
        assert out.prices == se.prices
        assert np.array_equal(out.equilibrium.e, se.miners.e)
        assert np.array_equal(out.equilibrium.c, se.miners.c)
        assert not out.report.degraded
        assert out.report == DegradationReport()

    def test_standalone_mode_pipeline(self):
        params = _params(h=1.0).with_mode(EdgeMode.STANDALONE, e_max=40.0)
        out = run_resilient_pipeline(params, CHAOS_PLAN, n_rounds=10,
                                     seed=3)
        assert len(out.rounds) == 10
        # During outage rounds the standalone ESP rejects everything.
        for rnd in (2, 3, 4):
            assert out.rounds[rnd].esp_revenue == 0.0

    def test_total_esp_outage_substitutes_all_cloud_equilibrium(self):
        params = _params()
        plan = FaultPlan((EspOutage(start=0),), seed=1)
        out = run_resilient_pipeline(params, plan, n_rounds=5, seed=3)
        assert any("all-cloud" in n for n in out.report.notes)
        assert out.esp_revenue == 0.0
        assert out.equilibrium.total_edge < 1e-3
        assert out.equilibrium.total_cloud > 0.0
        assert out.blocks_mined == 5

    def test_outcome_aggregates_are_finite(self):
        out = run_resilient_pipeline(_params(), CHAOS_PLAN, n_rounds=10,
                                     seed=3)
        assert np.isfinite(out.mean_miner_payoff)
        assert out.esp_revenue >= 0.0 and out.csp_revenue >= 0.0
        assert 0 <= out.blocks_mined <= 10


class TestAllCloudEquilibrium:
    def test_edge_demand_vanishes(self):
        eq = all_cloud_equilibrium(_params())
        assert eq.total_edge < 1e-3
        assert eq.total_cloud > 0.0
        assert eq.converged

    def test_pinned_cloud_price_is_respected(self):
        eq = all_cloud_equilibrium(_params(), p_c=1.0)
        assert eq.prices.p_c == 1.0
        assert eq.total_cloud > 0.0

    def test_standalone_params_accepted(self):
        params = _params(h=1.0).with_mode(EdgeMode.STANDALONE, e_max=40.0)
        eq = all_cloud_equilibrium(params, p_c=1.0)
        assert eq.total_edge < 1e-3


class TestDegradationReport:
    def test_clean_report_summary(self):
        report = DegradationReport()
        assert not report.degraded
        assert "clean run" in report.summary()

    def test_degraded_summary_names_fallbacks(self):
        report = DegradationReport(fallbacks=("stackelberg-anticipating",),
                                   retries=3)
        assert report.degraded
        assert "stackelberg-anticipating" in report.summary()

    def test_to_dict_round_trips_the_fields(self):
        out = run_resilient_pipeline(_params(), CHAOS_PLAN, n_rounds=6,
                                     seed=3)
        d = out.report.to_dict()
        assert d["degraded"] is True
        assert len(d["faults"]) == len(out.report.faults)
        assert d["retries"] == out.report.retries
