"""Fault plan DSL + injector: windows, determinism, event recording."""

import pytest

from repro.exceptions import ConfigurationError, TransientProviderError
from repro.offloading import (CloudProvider, Dispatcher, EdgeProvider,
                              ResourceRequest, ResponseStatus)
from repro.resilience import (CapacityDegradation, CspLatencySpike,
                              EspOutage, FaultInjector, FaultPlan,
                              FaultyCloudProvider, FaultyEdgeProvider,
                              TransientFaults)


class TestFaultPlanValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            EspOutage(start=3, stop=3)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            EspOutage(start=-1)

    def test_spike_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            CspLatencySpike(factor=0.5)

    def test_capacity_factor_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityDegradation(factor=1.5)

    def test_transient_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            TransientFaults(rate=1.5)

    def test_transient_bad_target_rejected(self):
        with pytest.raises(ConfigurationError):
            TransientFaults(rate=0.1, target="mainframe")

    def test_none_plan_is_empty(self):
        assert FaultPlan.none().faults == ()

    def test_esp_down_for_all(self):
        assert FaultPlan((EspOutage(start=0),)).esp_down_for_all(10)
        assert FaultPlan((EspOutage(0, 10),)).esp_down_for_all(10)
        assert not FaultPlan((EspOutage(0, 9),)).esp_down_for_all(10)
        assert not FaultPlan((EspOutage(1),)).esp_down_for_all(10)


class TestFaultInjector:
    def test_outage_window_half_open(self):
        inj = FaultInjector(FaultPlan((EspOutage(start=1, stop=3),)))
        down = []
        for _ in range(5):
            down.append(inj.esp_down())
            inj.advance_round()
        assert down == [False, True, True, False, False]

    def test_events_recorded_once_per_round_and_kind(self):
        inj = FaultInjector(FaultPlan((EspOutage(start=0, stop=1),)))
        assert inj.esp_down() and inj.esp_down() and inj.esp_down()
        assert len(inj.events) == 1
        assert inj.events[0].kind == "esp-outage"
        assert inj.events[0].round == 0

    def test_latency_factor_takes_worst_spike(self):
        inj = FaultInjector(FaultPlan((CspLatencySpike(0, None, 2.0),
                                       CspLatencySpike(0, None, 3.0))))
        assert inj.latency_factor() == 3.0

    def test_capacity_factor_takes_worst_degradation(self):
        inj = FaultInjector(FaultPlan((CapacityDegradation(0, None, 0.8),
                                       CapacityDegradation(0, None, 0.4))))
        assert inj.capacity_factor() == 0.4

    def test_transient_draws_are_seed_deterministic(self):
        plan = FaultPlan((TransientFaults(rate=0.5, target="csp"),), seed=9)
        a = [FaultInjector(plan).transient_failure("csp")
             for _ in range(1)]
        i1, i2 = FaultInjector(plan), FaultInjector(plan)
        seq1 = [i1.transient_failure("csp") for _ in range(50)]
        seq2 = [i2.transient_failure("csp") for _ in range(50)]
        assert seq1 == seq2
        assert any(seq1) and not all(seq1)

    def test_transient_target_filtering(self):
        plan = FaultPlan((TransientFaults(rate=1.0, target="esp"),))
        inj = FaultInjector(plan)
        assert inj.transient_failure("esp")
        assert not inj.transient_failure("csp")

    def test_reset_replays_identically(self):
        plan = FaultPlan((TransientFaults(rate=0.5, target="both"),), seed=3)
        inj = FaultInjector(plan)
        first = [inj.transient_failure("csp") for _ in range(20)]
        inj.reset()
        assert [inj.transient_failure("csp") for _ in range(20)] == first
        assert inj.round == 0 and inj.events != ()


class TestFaultyProviders:
    def _esp(self, injector, **kwargs):
        defaults = dict(price=2.0, h=0.8, seed=0)
        defaults.update(kwargs)
        return FaultyEdgeProvider(EdgeProvider(**defaults), injector)

    def test_outage_forces_transfer_in_connected_mode(self):
        inj = FaultInjector(FaultPlan((EspOutage(start=0),)))
        esp = self._esp(inj)
        assert not any(esp.sample_satisfaction() for _ in range(50))

    def test_outage_rejects_in_standalone_mode(self):
        inj = FaultInjector(FaultPlan((EspOutage(start=0),)))
        esp = self._esp(inj, h=1.0, capacity=100.0)
        assert not esp.try_admit(1.0)
        assert esp.account.revenue == 0.0

    def test_capacity_degradation_shrinks_admission(self):
        inj = FaultInjector(FaultPlan((CapacityDegradation(0, None, 0.5),)))
        esp = self._esp(inj, h=1.0, capacity=100.0)
        assert esp.remaining_capacity == pytest.approx(50.0)
        assert esp.try_admit(50.0)
        assert not esp.try_admit(1.0)

    def test_transient_esp_failure_raises_before_billing(self):
        inj = FaultInjector(FaultPlan((TransientFaults(1.0, "esp"),)))
        esp = self._esp(inj, h=1.0, capacity=100.0)
        with pytest.raises(TransientProviderError) as exc:
            esp.try_admit(5.0)
        assert exc.value.provider == "esp"
        assert esp.account.revenue == 0.0
        assert esp.load == 0.0

    def test_transient_csp_failure_raises_before_billing(self):
        inj = FaultInjector(FaultPlan((TransientFaults(1.0, "csp"),)))
        csp = FaultyCloudProvider(CloudProvider(price=1.0), inj)
        with pytest.raises(TransientProviderError) as exc:
            csp.provision(5.0)
        assert exc.value.provider == "csp"
        assert csp.account.revenue == 0.0

    def test_latency_spike_inflates_fork_rate_within_bounds(self):
        inj = FaultInjector(FaultPlan((CspLatencySpike(0, None, 3.0),)))
        csp = FaultyCloudProvider(CloudProvider(price=1.0, d_avg=2.0), inj)
        assert csp.effective_d_avg == pytest.approx(6.0)
        beta = csp.effective_fork_rate(0.2)
        assert 0.2 < beta < 1.0
        assert beta == pytest.approx(1.0 - 0.8 ** 3)

    def test_no_spike_is_identity(self):
        inj = FaultInjector(FaultPlan.none())
        csp = FaultyCloudProvider(CloudProvider(price=1.0, d_avg=2.0), inj)
        assert csp.effective_fork_rate(0.2) == 0.2

    def test_wrappers_slot_into_plain_dispatcher(self):
        inj = FaultInjector(FaultPlan((EspOutage(start=0),)))
        esp = self._esp(inj)
        csp = FaultyCloudProvider(CloudProvider(price=1.0), inj)
        disp = Dispatcher(esp, csp)
        alloc = disp.dispatch(ResourceRequest(0, 4.0, 6.0))
        assert alloc.status is ResponseStatus.TRANSFERRED
        assert alloc.cloud_units == 10.0
        assert alloc.edge_charge == 0.0

    def test_unfaulted_wrapper_is_transparent(self):
        inj = FaultInjector(FaultPlan.none())
        bare = EdgeProvider(price=2.0, h=0.8, seed=42)
        wrapped = FaultyEdgeProvider(EdgeProvider(price=2.0, h=0.8,
                                                  seed=42), inj)
        draws_bare = [bare.sample_satisfaction() for _ in range(200)]
        draws_wrapped = [wrapped.sample_satisfaction() for _ in range(200)]
        assert draws_bare == draws_wrapped
        assert inj.events == ()
