"""ResilientDispatcher: transactional retries, exact billing, degradation."""

import pytest

from repro.offloading import (CloudProvider, Dispatcher, EdgeProvider,
                              ResourceRequest, ResponseStatus)
from repro.resilience import (EspOutage, FaultInjector, FaultPlan,
                              FaultyCloudProvider, FaultyEdgeProvider,
                              ResilientDispatcher, RetryPolicy,
                              TransientFaults)


def _stack(plan, *, capacity=None, h=0.8, policy=None, seed=0):
    injector = FaultInjector(plan)
    esp = FaultyEdgeProvider(
        EdgeProvider(price=2.0, h=h if capacity is None else 1.0,
                     capacity=capacity, seed=0), injector)
    csp = FaultyCloudProvider(CloudProvider(price=1.0), injector)
    return injector, esp, csp, ResilientDispatcher(esp, csp,
                                                   policy=policy,
                                                   seed=seed)


class TestTransactionalRetry:
    def test_clean_path_matches_plain_dispatcher(self):
        _, esp, csp, resilient = _stack(FaultPlan.none())
        plain_esp = EdgeProvider(price=2.0, h=0.8, seed=0)
        plain_csp = CloudProvider(price=1.0)
        plain = Dispatcher(plain_esp, plain_csp)
        req = ResourceRequest(0, 4.0, 6.0)
        a = resilient.dispatch(req)
        b = plain.dispatch(req)
        assert (a.status, a.edge_units, a.cloud_units,
                a.edge_charge, a.cloud_charge) == \
               (b.status, b.edge_units, b.cloud_units,
                b.edge_charge, b.cloud_charge)
        assert resilient.stats.retries == 0

    def test_retry_recovers_without_double_billing(self):
        # 50% CSP failure: with generous attempts, every request lands
        # eventually; the ledgers must match the allocations exactly.
        plan = FaultPlan((TransientFaults(rate=0.5, target="csp"),),
                         seed=11)
        _, esp, csp, disp = _stack(
            plan, policy=RetryPolicy(max_attempts=50), seed=1)
        requests = [ResourceRequest(i, 3.0, 5.0) for i in range(10)]
        allocations = disp.dispatch_all(requests)
        assert all(a.status is not ResponseStatus.FAILED
                   for a in allocations)
        assert disp.stats.retries > 0
        edge_billed = sum(a.edge_charge for a in allocations)
        cloud_billed = sum(a.cloud_charge for a in allocations)
        assert esp.account.revenue == pytest.approx(edge_billed)
        assert csp.account.revenue == pytest.approx(cloud_billed)
        assert csp.account.units_sold == pytest.approx(
            sum(a.cloud_units for a in allocations))

    def test_exhausted_retries_degrade_to_failed_allocation(self):
        plan = FaultPlan((TransientFaults(rate=1.0, target="csp"),))
        _, esp, csp, disp = _stack(
            plan, policy=RetryPolicy(max_attempts=3), seed=1)
        alloc = disp.dispatch(ResourceRequest(7, 3.0, 5.0))
        assert alloc.status is ResponseStatus.FAILED
        assert alloc.total_units == 0.0
        assert alloc.total_charge == 0.0
        assert disp.failed_requests == [7]
        assert disp.stats.failed_requests == 1
        # Rollback left both ledgers untouched.
        assert esp.account.revenue == 0.0
        assert csp.account.revenue == 0.0

    def test_standalone_load_rolled_back_on_failure(self):
        # Edge admission succeeds, then the CSP dies permanently: the
        # admitted load and ESP billing must be rolled back, leaving the
        # full capacity to later requests.
        plan = FaultPlan((TransientFaults(rate=1.0, target="csp"),))
        _, esp, csp, disp = _stack(
            plan, capacity=10.0, policy=RetryPolicy(max_attempts=2))
        alloc = disp.dispatch(ResourceRequest(0, 8.0, 1.0))
        assert alloc.status is ResponseStatus.FAILED
        assert esp.load == 0.0
        assert esp.account.revenue == 0.0
        assert esp.remaining_capacity == pytest.approx(10.0)

    def test_retry_stats_are_seed_deterministic(self):
        plan = FaultPlan((TransientFaults(rate=0.4, target="both"),),
                         seed=5)
        requests = [ResourceRequest(i, 2.0, 2.0) for i in range(8)]
        runs = []
        for _ in range(2):
            _, _, _, disp = _stack(
                plan, policy=RetryPolicy(max_attempts=6), seed=2)
            allocations = disp.dispatch_all(requests)
            runs.append((disp.stats.retries, disp.failed_requests,
                         [a.status for a in allocations]))
        assert runs[0] == runs[1]

    def test_outage_is_not_retried_in_connected_mode(self):
        # An outage routes via transfer, not TransientProviderError:
        # no retry budget is burned.
        plan = FaultPlan((EspOutage(start=0),))
        _, esp, csp, disp = _stack(plan)
        alloc = disp.dispatch(ResourceRequest(0, 4.0, 0.0))
        assert alloc.status is ResponseStatus.TRANSFERRED
        assert disp.stats.retries == 0
