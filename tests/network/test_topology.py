"""Topology builders."""

import networkx as nx
import pytest

from repro.exceptions import ConfigurationError
from repro.network import (CSP_NODE, ESP_NODE, LAN, METRO, WAN,
                           LinkProfile, edge_cloud_topology,
                           scale_free_topology, small_world_topology)


class TestLinkProfile:
    def test_defaults_sane(self):
        assert LAN.latency < METRO.latency < WAN.latency
        assert LAN.bandwidth > METRO.bandwidth > WAN.bandwidth

    def test_sampling_without_jitter_deterministic(self, rng):
        lat, bw = METRO.sample(rng)
        assert (lat, bw) == (METRO.latency, METRO.bandwidth)

    def test_sampling_with_jitter_positive(self, rng):
        noisy = LinkProfile(latency=0.05, bandwidth=1e6, jitter=0.3)
        for _ in range(200):
            lat, bw = noisy.sample(rng)
            assert lat > 0 and bw > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkProfile(latency=-1.0, bandwidth=1e6)
        with pytest.raises(ConfigurationError):
            LinkProfile(latency=0.1, bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            LinkProfile(latency=0.1, bandwidth=1e6, jitter=1.0)


@pytest.mark.parametrize("builder", [edge_cloud_topology,
                                     small_world_topology,
                                     scale_free_topology])
class TestBuilders:
    def test_providers_attached_to_every_miner(self, builder):
        g = builder(12, seed=0)
        assert ESP_NODE in g and CSP_NODE in g
        for m in range(12):
            assert g.has_edge(ESP_NODE, m)
            assert g.has_edge(CSP_NODE, m)

    def test_edges_carry_attributes(self, builder):
        g = builder(12, seed=0)
        for u, v, data in g.edges(data=True):
            assert data["latency"] >= 0
            assert data["bandwidth"] > 0

    def test_connected(self, builder):
        g = builder(12, seed=0)
        assert nx.is_connected(g)

    def test_roles_marked(self, builder):
        g = builder(12, seed=0)
        roles = nx.get_node_attributes(g, "role")
        assert roles[ESP_NODE] == "esp"
        assert roles[CSP_NODE] == "csp"
        assert sum(1 for r in roles.values() if r == "miner") == 12

    def test_too_few_miners_rejected(self, builder):
        with pytest.raises(ConfigurationError):
            builder(1, seed=0)


class TestEdgeCloudSpecifics:
    def test_odd_degree_product_handled(self):
        # 5 miners x degree 3 = odd sum; the builder must fix it up.
        g = edge_cloud_topology(5, peer_degree=3, seed=1)
        assert nx.is_connected(g)

    def test_seed_reproducibility(self):
        a = edge_cloud_topology(10, seed=7)
        b = edge_cloud_topology(10, seed=7)
        assert set(a.edges) == set(b.edges)
