"""Gossip propagation and game-parameter calibration."""

import networkx as nx
import pytest

from repro.blockchain import ForkModel
from repro.exceptions import ConfigurationError
from repro.network import (CSP_NODE, ESP_NODE, GossipModel,
                           calibrate_game_delays, edge_cloud_topology,
                           propagation_time)


@pytest.fixture
def topology():
    return edge_cloud_topology(20, seed=3)


class TestGossipModel:
    def test_link_cost_components(self):
        m = GossipModel(block_size=1e6, validation_delay=0.01)
        # 0.02 latency + 1e6/1e7 transmission + 0.01 validation
        assert m.link_cost(0.02, 1e7) == pytest.approx(0.13)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GossipModel(block_size=0.0)
        with pytest.raises(ConfigurationError):
            GossipModel(block_size=1.0, validation_delay=-1.0)


class TestPropagationTime:
    def test_edge_faster_than_cloud(self, topology):
        m = GossipModel()
        assert propagation_time(topology, ESP_NODE, m) < \
            propagation_time(topology, CSP_NODE, m)

    def test_partial_coverage_is_faster(self, topology):
        m = GossipModel()
        assert propagation_time(topology, CSP_NODE, m, coverage=0.5) <= \
            propagation_time(topology, CSP_NODE, m, coverage=1.0)

    def test_two_node_line_exact(self):
        g = nx.Graph()
        g.add_node("a", role="miner")
        g.add_node("b", role="miner")
        g.add_edge("a", "b", latency=0.1, bandwidth=1e6)
        m = GossipModel(block_size=1e5)
        # cost = 0.1 + 1e5/1e6 = 0.2; origin 'a' reaches itself at 0.
        assert propagation_time(g, "a", m) == pytest.approx(0.2)

    def test_bigger_blocks_slower(self, topology):
        small = GossipModel(block_size=1e5)
        big = GossipModel(block_size=1e7)
        assert propagation_time(topology, CSP_NODE, small) < \
            propagation_time(topology, CSP_NODE, big)

    def test_invalid_coverage(self, topology):
        with pytest.raises(ConfigurationError):
            propagation_time(topology, ESP_NODE, GossipModel(),
                             coverage=0.0)

    def test_no_miners_rejected(self):
        g = nx.Graph()
        g.add_node("x", role="esp")
        with pytest.raises(ConfigurationError):
            propagation_time(g, "x", GossipModel())


class TestCalibration:
    def test_fields_consistent(self, topology):
        cal = calibrate_game_delays(topology, GossipModel())
        assert cal.d_avg == pytest.approx(cal.cloud_delay
                                          - cal.edge_delay)
        assert 0.0 <= cal.fork_rate < 1.0

    def test_fork_rate_from_gap(self, topology):
        fm = ForkModel()
        cal = calibrate_game_delays(topology, GossipModel(),
                                    fork_model=fm)
        assert cal.fork_rate == pytest.approx(
            float(fm.fork_rate(cal.d_avg)))

    def test_beta_monotone_in_block_size(self, topology):
        betas = [calibrate_game_delays(
            topology, GossipModel(block_size=bs)).fork_rate
            for bs in (1e5, 1e6, 1e7)]
        assert betas[0] < betas[1] < betas[2]

    def test_zero_gap_zero_beta(self):
        # If the CSP were as close as the ESP, no fork advantage remains.
        g = edge_cloud_topology(10, seed=0)
        for m in range(10):
            g[CSP_NODE][m]["latency"] = g[ESP_NODE][m]["latency"]
            g[CSP_NODE][m]["bandwidth"] = g[ESP_NODE][m]["bandwidth"]
        cal = calibrate_game_delays(g, GossipModel())
        assert cal.d_avg == pytest.approx(0.0)
        assert cal.fork_rate == pytest.approx(0.0)
