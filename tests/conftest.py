"""Shared fixtures: canonical parameter sets used across the test suite."""

import numpy as np
import pytest

from repro.core import EdgeMode, GameParameters, Prices, homogeneous


@pytest.fixture
def prices():
    """The default price point used throughout Section VI."""
    return Prices(p_e=2.0, p_c=1.0)


@pytest.fixture
def connected_params():
    """n=5 homogeneous miners, B=200, connected mode (Fig. 4 setup)."""
    return homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8,
                       edge_cost=0.2, cloud_cost=0.1)


@pytest.fixture
def binding_params():
    """Budget-binding variant (B below the Corollary-1 threshold)."""
    return homogeneous(5, 100.0, reward=1000.0, fork_rate=0.2, h=0.8,
                       edge_cost=0.2, cloud_cost=0.1)


@pytest.fixture
def standalone_params():
    """Standalone mode with a binding capacity of 80 units."""
    return homogeneous(5, 1000.0, reward=1000.0, fork_rate=0.2,
                       mode=EdgeMode.STANDALONE, e_max=80.0,
                       edge_cost=0.2, cloud_cost=0.1)


@pytest.fixture
def heterogeneous_params():
    """Five miners with distinct budgets."""
    return GameParameters(reward=1000.0, fork_rate=0.2,
                          budgets=[50.0, 100.0, 150.0, 200.0, 400.0],
                          h=0.8, edge_cost=0.2, cloud_cost=0.1)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
