"""End-to-end integration: every subsystem composed in one scenario.

Physical topology → delay/β calibration → Stackelberg pricing → miner
equilibrium → offloading market dispatch + billing → event-driven mining
on a real chain → welfare accounting. Each hand-off is checked, so a
regression anywhere in the pipeline fails here even if the unit tests of
the neighboring modules still pass.
"""

import numpy as np
import pytest

from repro.blockchain import (Difficulty, EventDrivenSimulator, ForkModel,
                              MinerNode, PropagationModel)
from repro.core import (Prices, from_calibration, solve_stackelberg,
                        verify_miner_equilibrium, welfare_report)
from repro.network import (GossipModel, calibrate_game_delays,
                           edge_cloud_topology)
from repro.offloading import (CloudProvider, Dispatcher, EdgeProvider,
                              ResourceRequest, build_invoices,
                              build_statement)


@pytest.fixture(scope="module")
def pipeline():
    """Run the full pipeline once; the tests inspect its stages."""
    # 1. Physical network -> game parameters.
    graph = edge_cloud_topology(20, seed=5)
    calibration = calibrate_game_delays(graph,
                                        GossipModel(block_size=4e6))
    params = from_calibration(calibration, n=5, budget=150.0,
                              reward=1000.0, h=0.8, edge_cost=0.2,
                              cloud_cost=0.1)
    # 2. Leader + follower stages.
    se = solve_stackelberg(params)
    # 3. Market dispatch at equilibrium.
    esp = EdgeProvider(price=se.prices.p_e, unit_cost=0.2, h=1.0)
    csp = CloudProvider(price=se.prices.p_c, unit_cost=0.1)
    requests = [ResourceRequest(i, float(se.miners.e[i]),
                                float(se.miners.c[i]))
                for i in range(params.n)]
    allocations = Dispatcher(esp, csp).dispatch_all(requests)
    # 4. Mine a real chain on the provisioned units.
    nodes = [MinerNode(i, a.edge_units, a.cloud_units)
             for i, a in enumerate(allocations)]
    total_units = sum(n.total_units for n in nodes)
    sim = EventDrivenSimulator(
        nodes, Difficulty(unit_solve_time=total_units * 30.0),
        PropagationModel(cloud_delay=calibration.d_avg), reward=1000.0,
        seed=9)
    result = sim.run(4000)
    return dict(calibration=calibration, params=params, se=se,
                allocations=allocations, result=result, esp=esp,
                csp=csp)


class TestPipeline:
    def test_calibration_feeds_the_game(self, pipeline):
        cal = pipeline["calibration"]
        params = pipeline["params"]
        assert params.fork_rate == pytest.approx(cal.fork_rate)
        assert 0.0 < params.fork_rate < 1.0

    def test_equilibrium_is_verified(self, pipeline):
        se = pipeline["se"]
        assert se.prices.p_e > se.prices.p_c
        assert verify_miner_equilibrium(se.miners, rel_tol=1e-4)

    def test_market_serves_equilibrium_demand(self, pipeline):
        se = pipeline["se"]
        allocations = pipeline["allocations"]
        served_edge = sum(a.edge_units for a in allocations)
        assert served_edge == pytest.approx(se.miners.total_edge,
                                            rel=1e-9)
        # Billing consistency all the way through.
        invoices = build_invoices(allocations, se.prices.p_e,
                                  se.prices.p_c)
        statement = build_statement(allocations, se.prices.p_e,
                                    se.prices.p_c)
        assert sum(i.total for i in invoices.values()) == pytest.approx(
            statement.total_revenue)
        assert statement.esp_revenue == pytest.approx(
            pipeline["esp"].account.revenue)

    def test_mined_chain_matches_model(self, pipeline):
        from repro.core.winning import w_full
        result = pipeline["result"]
        allocations = pipeline["allocations"]
        assert result.chain.validate()
        e = np.array([a.edge_units for a in allocations])
        c = np.array([a.cloud_units for a in allocations])
        rate_edge = e.sum() / (e.sum() + c.sum()) / 30.0
        beta_emergent = 1.0 - np.exp(
            -rate_edge * pipeline["calibration"].d_avg)
        model = w_full(e, c, beta_emergent)
        assert np.max(np.abs(result.win_shares - model)) < 0.03

    def test_welfare_accounting_closes(self, pipeline):
        rep = welfare_report(pipeline["se"].miners)
        assert rep.transfers_balance == pytest.approx(0.0, abs=1e-6)
        assert 0.0 < rep.dissipation < 1.0

    def test_rewards_conserved_on_chain(self, pipeline):
        result = pipeline["result"]
        credited = sum(n.reward_earned for n in result.nodes)
        canonical = len(result.chain.winners())
        assert credited == pytest.approx(canonical * 1000.0)
