"""Vectorized projection kernels against exact references.

:func:`project_budget_boxes` must reproduce the per-miner waterfilling
projection (:func:`project_budget_orthant`) exactly; the joint
box-capacity projection is validated against feasibility, idempotence,
the VI optimality inequality ``(x - P(x)) . (y - P(x)) <= 0`` for
feasible ``y``, and scipy's SLSQP on small instances.
"""

import numpy as np
import pytest
from scipy.optimize import minimize

from repro.game.projections import (project_boxes_capacity,
                                    project_budget_boxes,
                                    project_budget_orthant)

P_E, P_C = 2.0, 1.0


def _random_points(rng, n):
    # Include negative coordinates: extragradient steps can leave the
    # orthant before projection.
    e = rng.uniform(-20.0, 120.0, size=n)
    c = rng.uniform(-20.0, 120.0, size=n)
    budgets = rng.uniform(0.5, 150.0, size=n)
    return e, c, budgets


class TestProjectBudgetBoxes:
    def test_matches_per_miner_waterfilling(self):
        rng = np.random.default_rng(11)
        prices = np.array([P_E, P_C])
        for _ in range(40):
            n = int(rng.integers(1, 30))
            e, c, budgets = _random_points(rng, n)
            pe, pc = project_budget_boxes(e, c, P_E, P_C, budgets)
            for i in range(n):
                ref = project_budget_orthant(
                    np.array([e[i], c[i]]), prices, float(budgets[i]))
                assert abs(pe[i] - ref[0]) < 1e-10
                assert abs(pc[i] - ref[1]) < 1e-10

    def test_feasible_points_unchanged(self):
        e = np.array([1.0, 3.0])
        c = np.array([2.0, 0.0])
        budgets = np.array([10.0, 100.0])
        pe, pc = project_budget_boxes(e, c, P_E, P_C, budgets)
        np.testing.assert_array_equal(pe, e)
        np.testing.assert_array_equal(pc, c)

    def test_zero_budget_clips_to_origin(self):
        pe, pc = project_budget_boxes(np.array([5.0]), np.array([5.0]),
                                      P_E, P_C, np.array([0.0]))
        assert pe[0] == 0.0 and pc[0] == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            project_budget_boxes(np.array([1.0]), np.array([1.0]),
                                 0.0, P_C, np.array([1.0]))
        with pytest.raises(ValueError):
            project_budget_boxes(np.array([1.0]), np.array([1.0]),
                                 P_E, P_C, np.array([-1.0]))


def _feasible(e, c, budgets, e_max, slack=1e-8):
    return (np.all(e >= -slack) and np.all(c >= -slack)
            and np.all(P_E * e + P_C * c <= budgets + slack)
            and float(np.sum(e)) <= e_max + slack)


class TestProjectBoxesCapacity:
    def test_result_is_feasible(self):
        rng = np.random.default_rng(12)
        for _ in range(30):
            n = int(rng.integers(1, 25))
            e, c, budgets = _random_points(rng, n)
            e_max = float(rng.uniform(1.0, 0.4 * np.sum(budgets) / P_E))
            pe, pc = project_boxes_capacity(e, c, P_E, P_C, budgets,
                                            e_max)
            assert _feasible(pe, pc, budgets, e_max)

    def test_idempotent_on_feasible_points(self):
        rng = np.random.default_rng(13)
        n = 8
        e, c, budgets = _random_points(rng, n)
        e_max = 40.0
        pe, pc = project_boxes_capacity(e, c, P_E, P_C, budgets, e_max)
        pe2, pc2 = project_boxes_capacity(pe, pc, P_E, P_C, budgets,
                                          e_max)
        np.testing.assert_allclose(pe2, pe, rtol=0, atol=1e-9)
        np.testing.assert_allclose(pc2, pc, rtol=0, atol=1e-9)

    def test_vi_optimality_inequality(self):
        # P(x) is the Euclidean projection iff
        # (x - P(x)) . (y - P(x)) <= 0 for every feasible y.
        rng = np.random.default_rng(14)
        n = 6
        e, c, budgets = _random_points(rng, n)
        e_max = 15.0
        pe, pc = project_boxes_capacity(e, c, P_E, P_C, budgets, e_max)
        gap_e = e - pe
        gap_c = c - pc
        for _ in range(200):
            ye = rng.uniform(0.0, budgets / P_E)
            yc = np.maximum(
                rng.uniform(0.0, (budgets - P_E * ye)) / P_C, 0.0)
            total = float(np.sum(ye))
            if total > e_max:
                ye *= e_max / total
            assert _feasible(ye, yc, budgets, e_max)
            inner = float(np.dot(gap_e, ye - pe)
                          + np.dot(gap_c, yc - pc))
            assert inner <= 1e-6

    def test_matches_slsqp_on_small_instances(self):
        rng = np.random.default_rng(15)
        for _ in range(6):
            n = 3
            e, c, budgets = _random_points(rng, n)
            e_max = 10.0
            pe, pc = project_boxes_capacity(e, c, P_E, P_C, budgets,
                                            e_max)

            def objective(z):
                return (np.sum((z[:n] - e) ** 2)
                        + np.sum((z[n:] - c) ** 2))

            cons = [{"type": "ineq",
                     "fun": lambda z, i=i:
                         budgets[i] - P_E * z[i] - P_C * z[n + i]}
                    for i in range(n)]
            cons.append({"type": "ineq",
                         "fun": lambda z: e_max - np.sum(z[:n])})
            # Start SLSQP at the kernel's answer: if it is the true
            # projection, SLSQP must stay put; if it were suboptimal,
            # SLSQP would walk away and improve the objective.
            x0 = np.concatenate([pe, pc])
            res = minimize(objective, x0, method="SLSQP",
                           bounds=[(0.0, None)] * (2 * n),
                           constraints=cons,
                           options={"maxiter": 400, "ftol": 1e-10})
            assert objective(x0) <= res.fun + 1e-6
            np.testing.assert_allclose(res.x[:n], pe, rtol=0,
                                       atol=1e-4)
            np.testing.assert_allclose(res.x[n:], pc, rtol=0,
                                       atol=1e-4)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            project_boxes_capacity(np.array([1.0]), np.array([1.0]),
                                   P_E, P_C, np.array([5.0]), 0.0)
