"""Benchmark harness: report round-trips and regression detection.

The regression comparison is geomean-normalized so a uniformly faster
or slower machine never flags; these tests pin both directions — a
single case that slows down relative to its peers is flagged, and a
uniform slowdown across all cases is not.
"""

import pytest

from repro.kernels import (BenchCaseResult, BenchReport,
                           compare_reports, load_report, run_bench,
                           write_report)


def _case(solver="connected", kernel="scalar", n=8, median=1.0,
          capped=False, converged=True):
    return BenchCaseResult(solver=solver, kernel=kernel, n=n,
                           median_s=median, p95_s=median * 1.1,
                           repeats=3, converged=converged,
                           iterations=10, max_iter=3000, capped=capped)


def _report(cases):
    return BenchReport(repeats=3, sizes=[8], cases=cases)


class TestCompareReports:
    def test_single_case_slowdown_is_flagged(self):
        baseline = _report([_case(kernel="scalar", median=1.0),
                            _case(kernel="running", median=1.0),
                            _case(kernel="vectorized", median=1.0)])
        current = _report([_case(kernel="scalar", median=2.0),
                           _case(kernel="running", median=1.0),
                           _case(kernel="vectorized", median=1.0)])
        regressions = compare_reports(current, baseline, tolerance=0.25)
        assert len(regressions) == 1
        assert regressions[0].startswith("connected/scalar/n=8")

    def test_uniform_slowdown_is_machine_independent(self):
        baseline = _report([_case(kernel="scalar", median=1.0),
                            _case(kernel="running", median=0.5),
                            _case(kernel="vectorized", median=2.0)])
        # Same machine, 3x slower across the board: must not flag.
        current = _report([_case(kernel="scalar", median=3.0),
                           _case(kernel="running", median=1.5),
                           _case(kernel="vectorized", median=6.0)])
        assert compare_reports(current, baseline, tolerance=0.25) == []

    def test_within_tolerance_not_flagged(self):
        baseline = _report([_case(kernel="scalar", median=1.0),
                            _case(kernel="running", median=1.0)])
        current = _report([_case(kernel="scalar", median=1.2),
                           _case(kernel="running", median=1.0)])
        assert compare_reports(current, baseline, tolerance=0.25) == []
        assert compare_reports(current, baseline, tolerance=0.05)

    def test_capping_mismatch_excluded_from_comparison(self):
        # A case whose capping state changed is not comparable: the
        # capped timing is a lower bound, not the same measurement.
        baseline = _report([_case(kernel="scalar", median=1.0,
                                  capped=True),
                            _case(kernel="running", median=1.0),
                            _case(kernel="vectorized", median=1.0)])
        current = _report([_case(kernel="scalar", median=50.0,
                                 capped=False),
                           _case(kernel="running", median=1.0),
                           _case(kernel="vectorized", median=1.0)])
        assert compare_reports(current, baseline, tolerance=0.25) == []

    def test_lost_convergence_is_flagged_not_silently_dropped(self):
        # A case that converged at baseline but not now is a
        # regression even if its (meaningless) timing looks fine — it
        # must be reported, and excluded from the timing geomean so it
        # cannot also mask or manufacture timing drift.
        baseline = _report([_case(kernel="scalar", median=1.0),
                            _case(kernel="running", median=1.0),
                            _case(kernel="vectorized", median=1.0)])
        current = _report([_case(kernel="scalar", median=1.0,
                                 converged=False),
                           _case(kernel="running", median=1.0),
                           _case(kernel="vectorized", median=1.0)])
        regressions = compare_reports(current, baseline, tolerance=0.25)
        assert len(regressions) == 1
        assert regressions[0].startswith("connected/scalar/n=8")
        assert "did not converge" in regressions[0]

    def test_lost_convergence_excluded_from_geomean(self):
        # The non-converged case's timing must not enter the geomean:
        # here its 100x "speedup" would otherwise shift the normalizer
        # and flag the two honest, unchanged cases.
        baseline = _report([_case(kernel="scalar", median=1.0),
                            _case(kernel="running", median=1.0),
                            _case(kernel="vectorized", median=1.0)])
        current = _report([_case(kernel="scalar", median=0.01,
                                 converged=False),
                           _case(kernel="running", median=1.0),
                           _case(kernel="vectorized", median=1.0)])
        regressions = compare_reports(current, baseline, tolerance=0.25)
        assert all(r.startswith("connected/scalar/n=8")
                   for r in regressions)

    def test_capped_nonconverged_pair_stays_comparable(self):
        # Cap-limited cases (e.g. the sweep-capped scalar kernel at
        # large n) are comparable as long as BOTH sides carry the same
        # capped/converged state: their lower-bound timings still
        # drift-detect.
        baseline = _report([_case(kernel="scalar", median=1.0,
                                  capped=True, converged=False),
                            _case(kernel="running", median=1.0),
                            _case(kernel="vectorized", median=1.0)])
        current = _report([_case(kernel="scalar", median=2.0,
                                 capped=True, converged=False),
                           _case(kernel="running", median=1.0),
                           _case(kernel="vectorized", median=1.0)])
        regressions = compare_reports(current, baseline, tolerance=0.25)
        assert len(regressions) == 1
        assert regressions[0].startswith("connected/scalar/n=8")
        assert "did not converge" not in regressions[0]

    def test_fewer_than_two_common_cases_is_vacuous(self):
        baseline = _report([_case(kernel="scalar")])
        current = _report([_case(kernel="scalar", median=100.0)])
        assert compare_reports(current, baseline) == []

    def test_negative_tolerance_rejected(self):
        report = _report([_case()])
        with pytest.raises(ValueError):
            compare_reports(report, report, tolerance=-0.1)


class TestReportSerialization:
    def test_write_load_roundtrip(self, tmp_path):
        report = _report([_case(), _case(kernel="vectorized",
                                         median=0.1)])
        report.speedups["connected/n=8"] = 10.0
        report.notes.append("a note")
        path = write_report(report, tmp_path / "bench.json")
        loaded = load_report(path)
        assert loaded.to_dict() == report.to_dict()

    def test_summary_lines_cover_all_cases(self):
        report = _report([_case(), _case(kernel="vectorized")])
        report.speedups["connected/n=8"] = 3.0
        lines = report.summary_lines()
        text = "\n".join(lines)
        assert "connected/scalar/n=8" in text
        assert "connected/vectorized/n=8" in text
        assert "speedup connected/n=8: 3.0x" in text


class TestRunBench:
    def test_smoke_connected_only(self):
        report = run_bench(sizes=(4,), repeats=1,
                           solvers=("connected",))
        ids = {c.case_id for c in report.cases}
        assert ids == {"connected/scalar/n=4",
                       "connected/running/n=4",
                       "connected/vectorized/n=4"}
        assert "connected/n=4" in report.speedups
        assert all(c.converged for c in report.cases)
        assert all(not c.capped for c in report.cases)
        # Telemetry counters were harvested from instrumented solves.
        scalar = next(c for c in report.cases if c.kernel == "scalar")
        assert scalar.counters.get("br_sweeps", 0) > 0

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            run_bench(sizes=(1,))
        with pytest.raises(ValueError):
            run_bench(sizes=(4,), repeats=0)
        with pytest.raises(ValueError):
            run_bench(sizes=(4,), solvers=("connected", "simd"))


class TestCoverageComparison:
    """Missing-case detection distinguishes renames from shrinkage."""

    def test_missing_case_with_no_replacement_is_flagged(self):
        # The vectorized family still runs (n=64), so losing its n=8
        # case is genuine shrinkage, not a subset run.
        baseline = _report([_case(kernel="scalar"),
                            _case(kernel="running"),
                            _case(kernel="vectorized"),
                            _case(kernel="vectorized", n=64)])
        current = _report([_case(kernel="scalar"),
                           _case(kernel="running"),
                           _case(kernel="vectorized", n=64)])
        regressions = compare_reports(current, baseline, tolerance=0.25)
        assert any("connected/vectorized/n=8" in r
                   and "coverage shrank" in r for r in regressions)

    def test_unattempted_case_family_not_flagged(self):
        # A kernel label absent from the ENTIRE current run is an
        # opt-in family the run did not attempt (e.g. `bench` without
        # --multiscenario against a full baseline) — not shrinkage.
        baseline = _report([_case(kernel="scalar"),
                            _case(kernel="vectorized"),
                            _case(kernel="multiscenario"),
                            _case(kernel="multiscenario-serial")])
        current = _report([_case(kernel="scalar"),
                           _case(kernel="vectorized")])
        assert compare_reports(current, baseline, tolerance=0.25) == []

    def test_kernel_rename_is_new_not_missing(self):
        # A case whose kernel label changed (e.g. "vectorized" ->
        # "auto:vectorized") is new coverage, not lost coverage.
        baseline = _report([_case(kernel="scalar"),
                            _case(kernel="running"),
                            _case(kernel="vectorized")])
        current = _report([_case(kernel="scalar"),
                           _case(kernel="running"),
                           _case(kernel="auto:vectorized")])
        assert compare_reports(current, baseline, tolerance=0.25) == []

    def test_subset_run_not_flagged(self):
        # Running a subset of solvers/sizes (e.g. --quick) must not
        # report the deliberately skipped combos as regressions.
        baseline = _report([_case(kernel="scalar"),
                            _case(kernel="running"),
                            _case(kernel="scalar", n=64),
                            _case(kernel="running", n=64)])
        current = _report([_case(kernel="scalar"),
                           _case(kernel="running")])
        assert compare_reports(current, baseline, tolerance=0.25) == []


class TestRunBenchMultiscenario:
    def test_multiscenario_cases_and_speedup(self):
        report = run_bench(sizes=(4,), repeats=1,
                           solvers=("connected",), multiscenario=True)
        ids = {c.case_id for c in report.cases}
        assert "connected/multiscenario/n=4" in ids
        assert "connected/multiscenario-serial/n=4" in ids
        assert "connected/n=4/multiscenario" in report.speedups
        batched = next(c for c in report.cases
                       if c.kernel == "multiscenario")
        assert batched.converged

    def test_sizes_past_crossover_are_note_skipped(self):
        from repro.kernels.bench import _multiscenario_cases
        from repro.kernels.multiscenario import MULTISCENARIO_MAX_N

        big = MULTISCENARIO_MAX_N + 1
        notes = []
        cases = _multiscenario_cases((4, big), 1, notes)
        ids = {c.case_id for c in cases}
        assert "connected/multiscenario/n=4" in ids
        assert f"connected/multiscenario/n={big}" not in ids
        assert any("past the batching crossover" in note
                   for note in notes)
