"""Cross-scenario batched solving against the per-scenario oracle.

The contract of :mod:`repro.kernels.multiscenario` is **bit-identity**:
solving B scenarios in one batched aggregate-space call must produce
exactly the arrays (and iteration counts) that B independent
``solve_connected_equilibrium(..., kernel="vectorized")`` calls
produce. These tests enforce it over deterministic grids, mixed
fast/slow batches exercising the per-scenario convergence masking, and
hypothesis-drawn scenario sets mixing budget-slack and budget-bound
miners.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GameParameters, Prices, homogeneous
from repro.core.nep import solve_connected_equilibrium
from repro.exceptions import ConvergenceError
from repro.kernels import solve_connected_multiscenario


def price_grid_scenarios(n_scen=24, n=8):
    """A heterogeneous-budget scenario grid over prices and rewards."""
    out = []
    for i in range(n_scen):
        params = GameParameters(
            reward=900.0 + 15.0 * i, fork_rate=0.15 + 0.002 * i,
            h=0.8, budgets=[120.0 + 7.0 * j + 3.0 * i
                            for j in range(n)])
        out.append((params, Prices(2.0 + 0.03 * i, 1.0 + 0.01 * i)))
    return out


def solo(params, prices, tol=1e-9):
    return solve_connected_equilibrium(params, prices, tol=tol,
                                       kernel="vectorized")


class TestBitIdentity:
    def test_batch_matches_independent_vectorized_solves(self):
        scenarios = price_grid_scenarios()
        batch = solve_connected_multiscenario(scenarios)
        assert len(batch) == len(scenarios)
        for (params, prices), eq in zip(scenarios, batch):
            ref = solo(params, prices)
            assert np.array_equal(eq.e, ref.e)
            assert np.array_equal(eq.c, ref.c)

    def test_iteration_counts_match(self):
        scenarios = price_grid_scenarios()
        batch = solve_connected_multiscenario(scenarios)
        for (params, prices), eq in zip(scenarios, batch):
            ref = solo(params, prices)
            assert eq.report.iterations == ref.report.iterations

    def test_batch_of_one_matches(self):
        [(params, prices)] = price_grid_scenarios(n_scen=1)
        [eq] = solve_connected_multiscenario([(params, prices)])
        ref = solo(params, prices)
        assert np.array_equal(eq.e, ref.e)
        assert np.array_equal(eq.c, ref.c)

    def test_batch_composition_invariance(self):
        # A scenario's answer must not depend on its batch-mates: the
        # per-lane frozen masking guarantees each lane's trajectory is
        # exactly its solo trajectory.
        scenarios = price_grid_scenarios(n_scen=16)
        full = solve_connected_multiscenario(scenarios)
        front = solve_connected_multiscenario(scenarios[:4])
        back = solve_connected_multiscenario(scenarios[4:])
        for a, b in zip(full, front + back):
            assert np.array_equal(a.e, b.e)
            assert np.array_equal(a.c, b.c)
            assert a.report.iterations == b.report.iterations


class TestMixedBatches:
    def test_fast_and_slow_scenarios_mix(self):
        # Trivial (lone-miner-like tiny rewards are invalid; use
        # zero-premium "dominated" regimes instead) and general-regime
        # scenarios in one batch: the shrinking active set must not
        # contaminate either class.
        fast = [(homogeneous(8, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8), Prices(1.0, 2.0))]  # edge cheaper
        slow = price_grid_scenarios(n_scen=6)
        mixed = fast + slow + fast
        batch = solve_connected_multiscenario(mixed)
        for (params, prices), eq in zip(mixed, batch):
            ref = solo(params, prices)
            assert np.array_equal(eq.e, ref.e)
            assert np.array_equal(eq.c, ref.c)

    def test_budget_bound_and_slack_mix(self):
        # Starved miners (budget-bound, multiplier search active) next
        # to rich ones (slack, zero multiplier) in the same batch.
        tight = GameParameters(reward=2000.0, fork_rate=0.2, h=0.8,
                               budgets=[3.0 + 0.5 * j
                                        for j in range(8)])
        loose = GameParameters(reward=2000.0, fork_rate=0.2, h=0.8,
                               budgets=[2000.0 + 10.0 * j
                                        for j in range(8)])
        mixed = [(tight, Prices(2.0, 1.0)), (loose, Prices(2.0, 1.0)),
                 (tight, Prices(2.5, 1.2)), (loose, Prices(2.5, 1.2))]
        batch = solve_connected_multiscenario(mixed)
        for (params, prices), eq in zip(mixed, batch):
            ref = solo(params, prices)
            assert np.array_equal(eq.e, ref.e)
            assert np.array_equal(eq.c, ref.c)

    def test_uniform_n_required(self):
        a = homogeneous(4, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)
        b = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)
        with pytest.raises(ValueError, match="uniform miner count"):
            solve_connected_multiscenario([(a, Prices(2.0, 1.0)),
                                           (b, Prices(2.0, 1.0))])

    def test_empty_batch(self):
        assert solve_connected_multiscenario([]) == []


class TestHypothesisDraws:
    @given(st.integers(0, 2 ** 32 - 1),
           st.integers(2, 12), st.integers(2, 10))
    @settings(max_examples=25, deadline=None)
    def test_random_batches_bit_identical(self, seed, n_scen, n):
        rng = np.random.default_rng(seed)
        scenarios = []
        for _ in range(n_scen):
            # Budgets spanning 5..2000 mix bound and slack miners.
            params = GameParameters(
                budgets=rng.uniform(5.0, 2000.0, size=n),
                reward=float(rng.uniform(100.0, 3000.0)),
                fork_rate=float(rng.uniform(0.0, 0.9)),
                h=float(rng.uniform(0.1, 1.0)))
            prices = Prices(float(rng.uniform(0.5, 4.0)),
                            float(rng.uniform(0.2, 3.0)))
            scenarios.append((params, prices))
        batch = solve_connected_multiscenario(scenarios)
        for (params, prices), eq in zip(scenarios, batch):
            try:
                ref = solo(params, prices)
            except ConvergenceError:
                # The vectorized kernel rejects this point; the batch
                # must have rejected it too (None), never fabricated.
                assert eq is None
                continue
            assert eq is not None
            assert np.array_equal(eq.e, ref.e)
            assert np.array_equal(eq.c, ref.c)
            assert eq.report.iterations == ref.report.iterations
