"""Differential battery for the type-space compressed solver.

Three contracts, each checked against the exact per-miner aggregate
solve at sizes where the exact solve is cheap:

1. **Certified bound**: the measured per-coordinate error of the
   compressed solve never exceeds its reported ``error_bound`` — at
   every tested ``(n, k)``, in both the budget-slack and the
   budget-bound regime.
2. **Identity**: ``k >= n`` reproduces the exact per-miner solution
   **bit-for-bit** (not just within tolerance).
3. **Monotone certificate**: the certified bound is non-increasing as
   ``k`` grows (the measured error itself is noisy — a coarse
   compression can get lucky — but the certificate must tighten).

Plus the plumbing: ``n_types=`` threading through
``solve_connected_equilibrium`` / ``solve_standalone_equilibrium``,
``error_bound`` on the result, and the serving cache key separating
compressed from exact scenarios.
"""

import numpy as np
import pytest

from repro.core.gnep import solve_standalone_equilibrium
from repro.core.nep import solve_connected_equilibrium
from repro.core.params import (EdgeMode, GameParameters, Prices,
                               homogeneous)
from repro.exceptions import ConfigurationError
from repro.kernels.aggregate import solve_connected_aggregate
from repro.kernels.typespace import solve_connected_typespace
from repro.population import compress_budgets

PRICES = Prices(p_e=2.0, p_c=1.0)


def _slack_game(n, seed):
    """Heterogeneous budgets far above the interior spend (slack)."""
    rng = np.random.default_rng(seed)
    budgets = 200.0 * rng.lognormal(mean=0.0, sigma=0.5, size=n)
    return GameParameters(reward=1000.0, fork_rate=0.2,
                          budgets=budgets, h=0.8)


def _bound_game(n, seed):
    """Budgets at the interior-spend scale: a mixed bound/slack
    population — the regime where bucket widths genuinely matter."""
    rng = np.random.default_rng(seed)
    budgets = (600.0 / n) * rng.lognormal(mean=0.0, sigma=0.75, size=n)
    return GameParameters(reward=1000.0 * n, fork_rate=0.2,
                          budgets=budgets, h=0.8)


def _max_err(ts, exact):
    return max(float(np.max(np.abs(ts.e - exact.e))),
               float(np.max(np.abs(ts.c - exact.c))))


class TestCertifiedBound:
    @pytest.mark.parametrize("make", [_slack_game, _bound_game])
    @pytest.mark.parametrize("n", [32, 128, 512])
    def test_error_within_bound(self, make, n):
        params = make(n, seed=n)
        exact = solve_connected_aggregate(params, PRICES)
        for k in (4, 16, 64):
            if k >= n:
                continue  # identity path, covered by TestIdentity
            ts = solve_connected_typespace(params, PRICES, k)
            assert not ts.exact
            assert _max_err(ts, exact) <= ts.error_bound
            # The compressed profile never violates any true budget.
            spend = PRICES.p_e * ts.e + PRICES.p_c * ts.c
            assert np.all(spend <= params.budget_array * (1 + 1e-12))

    def test_bound_respects_nu(self):
        params = _bound_game(128, seed=5)
        exact = solve_connected_aggregate(params, PRICES, nu=0.3)
        ts = solve_connected_typespace(params, PRICES, 16, nu=0.3)
        assert _max_err(ts, exact) <= ts.error_bound

    def test_precomputed_compression_reused(self):
        params = _slack_game(64, seed=9)
        comp = compress_budgets(params.budget_array, 8)
        ts = solve_connected_typespace(params, PRICES, 8,
                                       compression=comp)
        assert ts.compression is comp
        with pytest.raises(ConfigurationError):
            solve_connected_typespace(
                _slack_game(32, seed=1), PRICES, 8, compression=comp)

    def test_homogeneous_collapses_exactly(self):
        params = homogeneous(256, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        ts = solve_connected_typespace(params, PRICES, 4)
        exact = solve_connected_aggregate(params, PRICES)
        assert ts.exact and ts.error_bound == 0.0
        assert _max_err(ts, exact) == 0.0


class TestIdentity:
    @pytest.mark.parametrize("n", [16, 128])
    def test_k_equal_n_bit_for_bit(self, n):
        params = _slack_game(n, seed=n + 1)
        exact = solve_connected_aggregate(params, PRICES)
        ts = solve_connected_typespace(params, PRICES, n)
        assert ts.exact and ts.error_bound == 0.0
        assert np.array_equal(ts.e, exact.e)
        assert np.array_equal(ts.c, exact.c)

    def test_equilibrium_entrypoint_k_ge_n_bit_for_bit(self):
        # n_types >= n falls through to the standard kernel path: the
        # result must be indistinguishable from never passing n_types.
        params = _slack_game(64, seed=3)
        plain = solve_connected_equilibrium(params, PRICES,
                                            kernel="vectorized")
        via = solve_connected_equilibrium(params, PRICES,
                                          kernel="vectorized",
                                          n_types=64)
        assert via.error_bound is None
        assert np.array_equal(via.e, plain.e)
        assert np.array_equal(via.c, plain.c)


class TestMonotoneCertificate:
    @pytest.mark.parametrize("make", [_slack_game, _bound_game])
    def test_bound_tightens_with_k(self, make):
        params = make(512, seed=11)
        exact = solve_connected_aggregate(params, PRICES)
        bounds = []
        for k in (4, 16, 64, 256, 512):
            ts = solve_connected_typespace(params, PRICES, k)
            assert _max_err(ts, exact) <= ts.error_bound
            bounds.append(ts.error_bound)
        for coarse, fine in zip(bounds, bounds[1:]):
            # Non-increasing up to a little root-finding noise.
            assert fine <= coarse * 1.05 + 1e-12
        assert bounds[-1] == 0.0  # k = n is exact


class TestSolverThreading:
    def test_connected_equilibrium_carries_bound(self):
        params = _bound_game(256, seed=21)
        eq = solve_connected_equilibrium(params, PRICES,
                                         kernel="vectorized",
                                         n_types=16)
        assert eq.converged
        assert eq.error_bound is not None and eq.error_bound > 0.0
        assert "type-space" in eq.report.message
        exact = solve_connected_aggregate(params, PRICES)
        assert _max_err(eq, exact) <= eq.error_bound

    def test_standalone_equilibrium_respects_capacity(self):
        rng = np.random.default_rng(31)
        budgets = 1000.0 * rng.lognormal(mean=0.0, sigma=0.3, size=128)
        params = GameParameters(reward=1000.0, fork_rate=0.2,
                                budgets=budgets,
                                mode=EdgeMode.STANDALONE, e_max=2.0)
        eq = solve_standalone_equilibrium(params, PRICES,
                                          kernel="vectorized",
                                          n_types=8)
        assert eq.total_edge <= 2.0 * (1.0 + 1e-6)
        assert eq.nu > 0.0  # the capacity constraint binds
        exact = solve_standalone_equilibrium(params, PRICES,
                                             kernel="vectorized")
        assert eq.total <= exact.total * 1.2
        assert eq.total >= exact.total * 0.8

    def test_rejects_bad_n_types(self):
        params = _slack_game(16, seed=2)
        with pytest.raises(ConfigurationError):
            solve_connected_equilibrium(params, PRICES, n_types=0)


class TestServingIntegration:
    def test_cache_key_separates_compression_levels(self):
        from repro.serving import ScenarioSpec, scenario_key
        params = _slack_game(32, seed=8)
        exact = ScenarioSpec(params, PRICES)
        k8 = ScenarioSpec(params, PRICES, n_types=8)
        k16 = ScenarioSpec(params, PRICES, n_types=16)
        keys = {scenario_key(s) for s in (exact, k8, k16)}
        assert len(keys) == 3

    def test_codec_roundtrips_n_types_and_bound(self):
        from repro.serving import ScenarioSpec
        from repro.serving.codec import (decode_result, decode_spec,
                                         encode_result, encode_spec)
        params = _bound_game(64, seed=13)
        spec = ScenarioSpec(params, PRICES, n_types=8)
        assert decode_spec(encode_spec(spec)) == spec
        eq = solve_connected_equilibrium(params, PRICES,
                                         kernel="vectorized",
                                         n_types=8)
        back = decode_result(encode_result(eq))
        assert back.error_bound == eq.error_bound
        # An exact solve round-trips its absent bound too.
        plain = solve_connected_equilibrium(params, PRICES,
                                            kernel="vectorized")
        assert decode_result(encode_result(plain)).error_bound is None

    def test_engine_serves_compressed_scenario(self):
        from repro.serving import ScenarioSpec, ServingEngine
        params = _bound_game(128, seed=17)
        engine = ServingEngine(warm_start=False)
        res = engine.serve(ScenarioSpec(params, PRICES, n_types=8))
        assert res.ok
        assert res.value.error_bound is not None
        again = engine.serve(ScenarioSpec(params, PRICES, n_types=8))
        assert again.source in ("memory", "disk")
