"""Vectorized kernels against the scalar reference oracle.

The scalar per-miner solvers in :mod:`repro.core` are the golden,
bit-stable reference; every kernel in :mod:`repro.kernels` must agree
with them within ``1e-9``. Full-solve comparisons converge the scalar
reference *tighter* (``tol=1e-12``) than the comparison tolerance:
Gauss–Seidel stops on the step residual, which lags the true fixed
point by ``O(n * tol)``, so comparing against a same-tolerance scalar
solve would measure the reference's truncation, not the kernel's error.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (EdgeMode, GameParameters, Prices, homogeneous,
                        solve_connected_equilibrium,
                        solve_standalone_equilibrium)
from repro.core.gnep import solve_standalone_extragradient
from repro.core.miner_best_response import (ResponseContext,
                                            solve_best_response)
from repro.core.nep import KERNELS, best_response_profile
from repro.kernels import (batched_best_response,
                           gauss_seidel_sweep_running, jacobi_sweep)

PRICES = Prices(p_e=2.0, p_c=1.0)


def connected_params(n=5, budget=200.0):
    return homogeneous(n, budget, reward=1000.0, fork_rate=0.2, h=0.8)


def random_params(rng, n=None):
    n = int(rng.integers(2, 12)) if n is None else n
    return GameParameters(budgets=rng.uniform(0.5, 50.0, size=n),
                          reward=float(rng.uniform(50.0, 3000.0)),
                          fork_rate=float(rng.uniform(0.0, 0.9)),
                          h=float(rng.uniform(0.1, 1.0)))


class TestBatchedBestResponse:
    @given(st.floats(0.5, 300.0), st.floats(0.0, 300.0),
           st.floats(0.0, 0.9), st.floats(0.1, 1.0),
           st.floats(0.3, 4.0), st.floats(0.2, 3.0),
           st.floats(5.0, 500.0), st.floats(0.0, 3.0))
    @settings(max_examples=80, deadline=None)
    def test_single_lane_matches_scalar(self, e_o, s_extra, beta, h,
                                        p_e, p_c, budget, nu):
        s_o = e_o + s_extra
        scalar = solve_best_response(
            ResponseContext(e_others=e_o, s_others=s_o), reward=800.0,
            beta=beta, h=h, p_e=p_e, p_c=p_c, budget=budget, nu=nu)
        batch = batched_best_response(
            np.array([e_o]), np.array([s_o]), reward=800.0, beta=beta,
            h=h, p_e=p_e, p_c=p_c, budgets=np.array([budget]), nu=nu)
        scale = max(1.0, abs(scalar.e), abs(scalar.c))
        assert abs(batch.e[0] - scalar.e) / scale < 1e-9
        assert abs(batch.c[0] - scalar.c) / scale < 1e-9

    def test_many_lanes_match_scalar_loop(self):
        rng = np.random.default_rng(7)
        n = 300
        e_o = rng.uniform(0.0, 400.0, size=n)
        s_o = e_o + rng.uniform(0.0, 400.0, size=n)
        budgets = rng.uniform(1.0, 600.0, size=n)
        for beta, h, nu in ((0.2, 0.8, 0.0), (0.6, 1.0, 1.3),
                            (0.0, 0.5, 0.0)):
            batch = batched_best_response(
                e_o, s_o, reward=1000.0, beta=beta, h=h, p_e=2.0,
                p_c=1.0, budgets=budgets, nu=nu)
            for i in range(n):
                scalar = solve_best_response(
                    ResponseContext(e_others=float(e_o[i]),
                                    s_others=float(s_o[i])),
                    reward=1000.0, beta=beta, h=h, p_e=2.0, p_c=1.0,
                    budget=float(budgets[i]), nu=nu)
                scale = max(1.0, abs(scalar.e), abs(scalar.c))
                assert abs(batch.e[i] - scalar.e) / scale < 1e-9
                assert abs(batch.c[i] - scalar.c) / scale < 1e-9

    def test_budget_multiplier_and_spending_reported(self):
        batch = batched_best_response(
            np.array([50.0, 50.0]), np.array([200.0, 200.0]),
            reward=1000.0, beta=0.2, h=0.8, p_e=2.0, p_c=1.0,
            budgets=np.array([5.0, 1e6]))
        assert batch.budget_multiplier[0] > 0.0  # tight budget
        assert batch.budget_multiplier[1] == 0.0  # slack budget
        assert batch.spending[0] == pytest.approx(5.0, rel=1e-6)


class TestSweeps:
    def test_jacobi_sweep_matches_scalar_jacobi(self):
        rng = np.random.default_rng(3)
        for params in (connected_params(),
                       random_params(rng), random_params(rng)):
            n = params.n
            e = rng.uniform(0.1, 30.0, size=n)
            c = rng.uniform(0.1, 60.0, size=n)
            e_ref, c_ref = best_response_profile(e, c, params, PRICES,
                                                 sweep="jacobi")
            e_vec, c_vec = jacobi_sweep(e, c, params, PRICES)
            np.testing.assert_allclose(e_vec, e_ref, rtol=1e-9,
                                       atol=1e-9)
            np.testing.assert_allclose(c_vec, c_ref, rtol=1e-9,
                                       atol=1e-9)

    def test_running_sweep_matches_scalar_gauss_seidel(self):
        rng = np.random.default_rng(4)
        for params in (connected_params(),
                       random_params(rng), random_params(rng)):
            n = params.n
            e = rng.uniform(0.1, 30.0, size=n)
            c = rng.uniform(0.1, 60.0, size=n)
            e_ref, c_ref = best_response_profile(e, c, params, PRICES,
                                                 sweep="gauss-seidel")
            e_run, c_run = gauss_seidel_sweep_running(e, c, params,
                                                      PRICES)
            np.testing.assert_allclose(e_run, e_ref, rtol=1e-9,
                                       atol=1e-9)
            np.testing.assert_allclose(c_run, c_ref, rtol=1e-9,
                                       atol=1e-9)

    def test_sweeps_respect_nu(self):
        params = connected_params()
        e = np.full(5, 10.0)
        c = np.full(5, 40.0)
        e_jac, c_jac = best_response_profile(e, c, params, PRICES,
                                             nu=0.7, sweep="jacobi")
        e_vec, c_vec = jacobi_sweep(e, c, params, PRICES, nu=0.7)
        np.testing.assert_allclose(e_vec, e_jac, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(c_vec, c_jac, rtol=1e-9, atol=1e-9)
        e_gs, c_gs = best_response_profile(e, c, params, PRICES, nu=0.7)
        e_run, c_run = gauss_seidel_sweep_running(e, c, params, PRICES,
                                                  nu=0.7)
        np.testing.assert_allclose(e_run, e_gs, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(c_run, c_gs, rtol=1e-9, atol=1e-9)
        # nu raises the perceived edge price: edge demand must drop.
        assert float(np.sum(e_vec)) < float(np.sum(
            jacobi_sweep(e, c, params, PRICES, nu=0.0)[0]))


def _assert_profiles_close(eq_a, eq_b, tol=1e-9):
    scale = max(1.0, float(np.max(np.abs(eq_a.e))),
                float(np.max(np.abs(eq_a.c))))
    assert float(np.max(np.abs(eq_a.e - eq_b.e))) / scale < tol
    assert float(np.max(np.abs(eq_a.c - eq_b.c))) / scale < tol


class TestConnectedSolveEquivalence:
    def test_kernels_enumerated(self):
        assert KERNELS == ("scalar", "running", "vectorized", "auto")
        with pytest.raises(ValueError):
            solve_connected_equilibrium(connected_params(), PRICES,
                                        kernel="simd")

    def test_running_matches_scalar_same_tolerance(self):
        for params in (connected_params(), connected_params(8, 40.0)):
            ref = solve_connected_equilibrium(params, PRICES)
            run = solve_connected_equilibrium(params, PRICES,
                                              kernel="running")
            assert run.converged
            _assert_profiles_close(ref, run)

    def test_vectorized_matches_tight_scalar(self):
        for params in (connected_params(), connected_params(8, 40.0),
                       connected_params(32, 500.0)):
            ref = solve_connected_equilibrium(params, PRICES,
                                              tol=1e-12,
                                              max_iter=20000)
            vec = solve_connected_equilibrium(params, PRICES,
                                              kernel="vectorized")
            assert vec.converged
            _assert_profiles_close(ref, vec)

    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_vectorized_matches_tight_scalar_random(self, seed):
        rng = np.random.default_rng(seed)
        params = random_params(rng, n=int(rng.integers(2, 9)))
        prices = Prices(p_e=float(rng.uniform(0.3, 4.0)),
                        p_c=float(rng.uniform(0.2, 3.0)))
        ref = solve_connected_equilibrium(params, prices, tol=1e-12,
                                          max_iter=20000)
        # The comparison is only well-posed when the tight scalar
        # reference is trustworthy: it must have converged, and the
        # equilibrium must be interior. At an e = 0 / c = 0 boundary
        # (unattractive pricing for one resource) the game admits
        # multiple equilibria and the kernels may legitimately select
        # different ones; scalar-solver convergence itself is covered
        # by its own suite.
        assume(ref.converged)
        assume(float(np.min(ref.e)) > 1e-6
               and float(np.min(ref.c)) > 1e-6)
        vec = solve_connected_equilibrium(params, prices,
                                          kernel="vectorized")
        _assert_profiles_close(ref, vec)

    def test_warm_start_agreement(self):
        params = connected_params()
        near = solve_connected_equilibrium(
            params, Prices(p_e=2.0, p_c=1.1))
        warm = (near.e, near.c)
        ref = solve_connected_equilibrium(params, PRICES, initial=warm)
        run = solve_connected_equilibrium(params, PRICES, initial=warm,
                                          kernel="running")
        _assert_profiles_close(ref, run)
        # The aggregate kernel solves the consistency system directly;
        # a warm start must not change its answer at all.
        cold_vec = solve_connected_equilibrium(params, PRICES,
                                               kernel="vectorized")
        warm_vec = solve_connected_equilibrium(params, PRICES,
                                               initial=warm,
                                               kernel="vectorized")
        assert np.array_equal(cold_vec.e, warm_vec.e)
        assert np.array_equal(cold_vec.c, warm_vec.c)

    def test_vectorized_report_is_flagged(self):
        vec = solve_connected_equilibrium(connected_params(), PRICES,
                                          kernel="vectorized")
        assert vec.converged
        assert "aggregate kernel" in vec.report.message
        assert vec.report.residual < 1e-9


class TestStandaloneSolveEquivalence:
    def standalone_params(self, n=5):
        return homogeneous(n, 1000.0, reward=1000.0, fork_rate=0.2,
                           mode=EdgeMode.STANDALONE, e_max=80.0)

    def test_decomposition_vectorized_matches_scalar(self):
        params = self.standalone_params()
        ref = solve_standalone_equilibrium(params, PRICES, tol=1e-11)
        vec = solve_standalone_equilibrium(params, PRICES,
                                           kernel="vectorized")
        # The shadow-price search stops at capacity_tol (1e-7 relative
        # on E), which dominates the kernel difference.
        _assert_profiles_close(ref, vec, tol=1e-5)
        assert vec.nu == pytest.approx(ref.nu, rel=1e-4, abs=1e-6)
        assert vec.total_edge == pytest.approx(80.0, rel=1e-4)

    def test_extragradient_vectorized_matches_scalar(self):
        params = self.standalone_params()
        ref = solve_standalone_extragradient(params, PRICES)
        vec = solve_standalone_extragradient(params, PRICES,
                                             kernel="vectorized")
        _assert_profiles_close(ref, vec, tol=1e-6)
