"""API-quality invariants: docstrings everywhere, exports resolve, and
exceptions stay inside the library's hierarchy."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.core", "repro.game", "repro.blockchain",
    "repro.network", "repro.offloading", "repro.population",
    "repro.learning", "repro.analysis", "repro.serving",
    "repro.telemetry",
]


def _walk_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                yield importlib.import_module(f"{pkg_name}.{info.name}")


ALL_MODULES = list({m.__name__: m for m in _walk_modules()}.values())


class TestDocumentation:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=[m.__name__ for m in ALL_MODULES])
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), \
            f"{module.__name__} lacks a module docstring"

    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=[m.__name__ for m in ALL_MODULES])
    def test_public_items_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__} exports undocumented items: "
            f"{undocumented}")


class TestExports:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=[m.__name__ for m in ALL_MODULES])
    def test_all_entries_resolve(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), \
                f"{module.__name__}.__all__ lists missing {name!r}"


class TestExceptionHierarchy:
    def test_all_library_errors_derive_from_base(self):
        from repro import exceptions

        for name in exceptions.__dict__:
            obj = getattr(exceptions, name)
            if inspect.isclass(obj) and issubclass(obj, Exception) \
                    and obj.__module__ == "repro.exceptions":
                assert issubclass(obj, repro.ReproError)

    def test_configuration_errors_are_value_errors(self):
        assert issubclass(repro.ConfigurationError, ValueError)
        assert issubclass(repro.ConvergenceError, RuntimeError)
