"""Equilibrium verification utilities, including the Nikaido-Isoda merit."""

import numpy as np
import pytest

from repro.core import (Prices, best_deviation_gain, homogeneous,
                        nikaido_isoda_residual,
                        solve_connected_equilibrium,
                        solve_standalone_equilibrium)
from repro.core.nep import MinerEquilibrium
from repro.game.diagnostics import ConvergenceReport


def _profile(params, prices, e, c):
    return MinerEquilibrium(e=np.asarray(e, float), c=np.asarray(c, float),
                            params=params, prices=prices,
                            report=ConvergenceReport(True, 0, 0.0, 1.0))


class TestDeviationGain:
    def test_equilibrium_has_no_gain(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        rep = best_deviation_gain(eq)
        assert rep.is_equilibrium
        assert rep.max_gain <= 1e-5

    def test_perturbed_profile_has_gain(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        bad = _profile(connected_params, prices, eq.e * 0.2, eq.c * 0.2)
        rep = best_deviation_gain(bad)
        assert not rep.is_equilibrium
        assert rep.max_gain > 0.01

    def test_gains_vector_shape(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        rep = best_deviation_gain(eq)
        assert rep.gains.shape == (5,)
        assert 0 <= rep.worst_miner < 5


class TestNikaidoIsoda:
    def test_zero_at_equilibrium(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        assert nikaido_isoda_residual(eq) == pytest.approx(0.0, abs=1e-5)

    def test_zero_at_variational_equilibrium(self, standalone_params,
                                             prices):
        eq = solve_standalone_equilibrium(standalone_params, prices)
        assert nikaido_isoda_residual(eq) == pytest.approx(0.0, abs=1e-4)

    def test_positive_off_equilibrium(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        bad = _profile(connected_params, prices, eq.e * 0.3, eq.c * 1.5)
        assert nikaido_isoda_residual(bad) > 1.0

    def test_monotone_toward_equilibrium(self, connected_params, prices):
        """The merit shrinks along the best-response path."""
        from repro.core.nep import best_response_profile
        eq = solve_connected_equilibrium(connected_params, prices)
        e, c = eq.e * 0.4, eq.c * 0.4
        values = []
        for _ in range(4):
            probe = _profile(connected_params, prices, e, c)
            values.append(nikaido_isoda_residual(probe))
            e, c = best_response_profile(e, c, connected_params, prices)
        assert values[0] > values[-1]
        assert values[-1] < 0.05 * values[0]
