"""Population-uncertainty scenario (Section V)."""

import numpy as np
import pytest

from repro.core import (DynamicGame, Prices, solve_dynamic_equilibrium)
from repro.core.nep import solve_connected_equilibrium
from repro.core.params import homogeneous
from repro.exceptions import ConfigurationError
from repro.population import FixedPopulation, GaussianPopulation


@pytest.fixture
def dyn_prices():
    return Prices(p_e=2.0, p_c=1.0)


def _game(pop, weights="capacity", **kw):
    defaults = dict(reward=1000.0, fork_rate=0.2, budget=200.0,
                    e_max=80.0, h=0.8)
    defaults.update(kw)
    return DynamicGame(pop, weights=weights, **defaults)


class TestConstruction:
    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            _game(FixedPopulation(5), weights="bogus")

    def test_capacity_weights_require_e_max(self):
        with pytest.raises(ConfigurationError):
            DynamicGame(FixedPopulation(5), reward=1.0, fork_rate=0.1,
                        budget=10.0, weights="capacity")

    def test_rejects_tiny_population(self):
        with pytest.raises(ConfigurationError):
            _game(FixedPopulation(1))

    def test_rejects_invalid_params(self):
        with pytest.raises(ConfigurationError):
            _game(FixedPopulation(5), reward=-1.0)
        with pytest.raises(ConfigurationError):
            _game(FixedPopulation(5), fork_rate=1.5)
        with pytest.raises(ConfigurationError):
            _game(FixedPopulation(5), budget=0.0)


class TestDegenerateConsistency:
    def test_fixed_population_h_weights_match_nep(self, dyn_prices):
        """With N deterministic and constant weights h, the symmetric
        dynamic fixed point IS the connected-mode NE."""
        game = _game(FixedPopulation(5), weights="h")
        dyn = solve_dynamic_equilibrium(game, dyn_prices)
        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)
        eq = solve_connected_equilibrium(params, dyn_prices)
        assert dyn.e == pytest.approx(float(eq.e[0]), rel=1e-4)
        assert dyn.c == pytest.approx(float(eq.c[0]), rel=1e-4)

    def test_budget_respected(self, dyn_prices):
        game = _game(GaussianPopulation(5, 2), budget=50.0)
        dyn = solve_dynamic_equilibrium(game, dyn_prices)
        assert 2.0 * dyn.e + 1.0 * dyn.c <= 50.0 * (1 + 1e-6)


class TestPaperFindings:
    def test_uncertainty_inflates_edge_requests(self, dyn_prices):
        """Section V / Fig. 9(a): population uncertainty makes miners more
        aggressive at the ESP (capacity-derived weights)."""
        dyn = solve_dynamic_equilibrium(
            _game(GaussianPopulation(5, 2)), dyn_prices)
        fix = solve_dynamic_equilibrium(
            _game(FixedPopulation(5)), dyn_prices)
        assert dyn.converged and fix.converged
        assert dyn.e > fix.e

    def test_expected_demand_can_exceed_capacity(self, dyn_prices):
        dyn = solve_dynamic_equilibrium(
            _game(GaussianPopulation(5, 2)), dyn_prices)
        assert dyn.expected_edge_total > 80.0
        assert dyn.expected_overload > 0.0

    def test_overload_zero_without_capacity(self, dyn_prices):
        game = DynamicGame(GaussianPopulation(5, 1), reward=1000.0,
                           fork_rate=0.2, budget=200.0, weights="h",
                           h=0.8)
        dyn = solve_dynamic_equilibrium(game, dyn_prices)
        assert dyn.expected_overload == 0.0

    def test_variance_increases_edge_requests(self, dyn_prices):
        """Fig. 9(b) shape over the paper's variance range."""
        es = []
        for sigma in (0.5, 1.0, 2.0):
            dyn = solve_dynamic_equilibrium(
                _game(GaussianPopulation(5, sigma)), dyn_prices)
            es.append(dyn.e)
        assert es[-1] > es[0]


class TestWeightModels:
    @pytest.mark.parametrize("weights", ["paper", "h", "capacity",
                                         "service"])
    def test_all_models_converge(self, weights, dyn_prices):
        game = _game(GaussianPopulation(5, 2), weights=weights)
        dyn = solve_dynamic_equilibrium(game, dyn_prices)
        assert dyn.converged
        assert dyn.e >= 0 and dyn.c >= 0

    def test_paper_weights_are_half(self):
        game = _game(FixedPopulation(5), weights="paper")
        w = game._sat_weights(10.0)
        assert np.all(w == 0.5)

    def test_capacity_ramp_bounds(self):
        game = _game(FixedPopulation(5), weights="capacity",
                     capacity_ramp=0.1)
        # demand = 5 e; fully served at e <= 16, fully rejected >= 17.6.
        assert game._sat_weights(15.9)[0] == 1.0
        assert game._sat_weights(17.7)[0] == 0.0
        mid = game._sat_weights(16.8)[0]
        assert 0.0 < mid < 1.0

    def test_service_weights_proportional(self):
        game = _game(FixedPopulation(5), weights="service")
        w = game._sat_weights(32.0)  # demand 160 vs capacity 80
        assert w[0] == pytest.approx(0.5)


class TestBestResponse:
    def test_best_response_is_optimal(self, dyn_prices):
        """Grid check: no grid point beats the semi-analytic BR."""
        game = _game(GaussianPopulation(5, 1.5), weights="service")
        e_br, c_br = game.best_response(20.0, 90.0, dyn_prices)
        u_star = game.expected_utility(e_br, c_br, 20.0, 90.0, dyn_prices)
        rng = np.random.default_rng(0)
        for _ in range(200):
            e = rng.uniform(0, 80.0)
            c = rng.uniform(0, 180.0)
            if 2.0 * e + 1.0 * c > 200.0:
                continue
            u = game.expected_utility(e, c, 20.0, 90.0, dyn_prices)
            assert u <= u_star + 1e-6 * max(abs(u_star), 1.0)

    def test_utility_decreases_with_price(self, dyn_prices):
        game = _game(GaussianPopulation(5, 1.5), weights="h")
        u_cheap = game.expected_utility(10.0, 50.0, 10.0, 50.0,
                                        Prices(1.5, 0.8))
        u_dear = game.expected_utility(10.0, 50.0, 10.0, 50.0,
                                       Prices(2.5, 1.2))
        assert u_cheap > u_dear
