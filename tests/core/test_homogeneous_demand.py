"""Closed-form demand oracle vs the iterative solvers, across regimes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium,
                        solve_standalone_equilibrium)
from repro.core.homogeneous_demand import homogeneous_demand
from repro.exceptions import ConfigurationError


def _numeric(params, prices):
    if params.mode is EdgeMode.STANDALONE:
        return solve_standalone_equilibrium(params, prices)
    return solve_connected_equilibrium(params, prices)


class TestRegimes:
    def test_interior(self, connected_params, prices):
        d = homogeneous_demand(connected_params, prices)
        assert d.regime == "interior"
        assert d.e == pytest.approx(25.6)

    def test_binding(self, binding_params, prices):
        d = homogeneous_demand(binding_params, prices)
        assert d.regime == "binding"
        assert 2.0 * d.e + 1.0 * d.c == pytest.approx(100.0)

    def test_pure_edge_when_cloud_overpriced(self, connected_params):
        bound = connected_params.mixed_price_bound(2.0)
        d = homogeneous_demand(connected_params,
                               Prices(2.0, bound + 0.01))
        assert d.c == 0.0
        assert d.e > 0.0

    def test_capacity_binding(self, standalone_params, prices):
        d = homogeneous_demand(standalone_params, prices)
        assert d.regime.startswith("capacity")
        assert d.total_edge == pytest.approx(80.0)
        assert d.nu > 0

    def test_capacity_slack(self, prices):
        params = homogeneous(5, 1000.0, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=1e5)
        d = homogeneous_demand(params, prices)
        assert d.nu == 0.0

    def test_beta_zero_pure_cloud(self, prices):
        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.0)
        d = homogeneous_demand(params, prices)
        assert d.e == 0.0
        assert d.regime == "pure-cloud"

    def test_heterogeneous_rejected(self, heterogeneous_params, prices):
        with pytest.raises(ConfigurationError):
            homogeneous_demand(heterogeneous_params, prices)


class TestCrossValidation:
    @given(st.sampled_from([60.0, 150.0, 200.0, 1200.0]),
           st.floats(1.2, 4.0), st.floats(0.2, 0.95),
           st.floats(0.05, 0.45), st.floats(0.2, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_connected_matches_numeric(self, budget, p_e, pc_frac, beta, h):
        p_c = pc_frac * p_e
        params = homogeneous(5, budget, reward=1000.0, fork_rate=beta, h=h)
        prices = Prices(p_e, p_c)
        d = homogeneous_demand(params, prices)
        num = _numeric(params, prices)
        assert num.converged
        scale = max(1.0, num.total)
        assert abs(d.total_edge - num.total_edge) / scale < 2e-4
        assert abs(d.total_cloud - num.total_cloud) / scale < 2e-4

    @given(st.sampled_from([200.0, 1200.0]),
           st.sampled_from([30.0, 80.0, 300.0]),
           st.floats(1.5, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_standalone_matches_numeric(self, budget, e_max, p_e):
        params = homogeneous(5, budget, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=e_max)
        prices = Prices(p_e, 1.0)
        try:
            d = homogeneous_demand(params, prices)
        except ConfigurationError:
            return  # corner regime: oracle falls back to numeric by design
        num = _numeric(params, prices)
        scale = max(1.0, num.total)
        assert abs(d.total_edge - num.total_edge) / scale < 5e-4
        assert abs(d.total_cloud - num.total_cloud) / scale < 5e-4
