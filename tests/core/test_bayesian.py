"""Bayesian miner game (private budget types)."""

import numpy as np
import pytest

from repro.core import Prices, homogeneous, solve_connected_equilibrium
from repro.core.bayesian import (BayesianMinerGame, BudgetType,
                                 solve_bayesian_equilibrium)
from repro.exceptions import ConfigurationError


@pytest.fixture
def prices():
    return Prices(2.0, 1.0)


@pytest.fixture
def types():
    return [BudgetType(50.0, 0.4), BudgetType(150.0, 0.4),
            BudgetType(400.0, 0.2)]


class TestConstruction:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            BayesianMinerGame(5, [BudgetType(100.0, 0.5)], reward=1.0,
                              fork_rate=0.1)

    def test_multinomial_weights_sum_to_one(self, types):
        game = BayesianMinerGame(5, types, reward=1000.0, fork_rate=0.2)
        assert float(np.sum(game._weights)) == pytest.approx(1.0)

    def test_profile_count(self, types):
        # C(n-1+K-1, K-1) = C(6, 2) = 15 count vectors for n=5, K=3.
        game = BayesianMinerGame(5, types, reward=1000.0, fork_rate=0.2)
        assert len(game._profiles) == 15

    def test_validation(self, types):
        with pytest.raises(ConfigurationError):
            BayesianMinerGame(1, types, reward=1.0, fork_rate=0.1)
        with pytest.raises(ConfigurationError):
            BudgetType(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            BudgetType(10.0, 0.0)


class TestEquilibrium:
    def test_degenerate_type_matches_homogeneous_ne(self, prices):
        game = BayesianMinerGame(5, [BudgetType(200.0, 1.0)],
                                 reward=1000.0, fork_rate=0.2, h=0.8)
        bne = solve_bayesian_equilibrium(game, prices)
        ref = solve_connected_equilibrium(
            homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8),
            prices)
        assert bne.converged
        e, c = bne.request(0)
        assert e == pytest.approx(float(ref.e[0]), rel=1e-3)
        assert c == pytest.approx(float(ref.c[0]), rel=1e-3)

    def test_monotone_in_type(self, types, prices):
        """Richer types request weakly more of both resources."""
        game = BayesianMinerGame(5, types, reward=1000.0, fork_rate=0.2,
                                 h=0.8)
        bne = solve_bayesian_equilibrium(game, prices)
        assert bne.converged
        es = [bne.request(k)[0] for k in range(3)]
        cs = [bne.request(k)[1] for k in range(3)]
        assert es[0] < es[1] < es[2]
        assert cs[0] < cs[1] < cs[2]

    def test_budgets_respected(self, types, prices):
        game = BayesianMinerGame(5, types, reward=1000.0, fork_rate=0.2,
                                 h=0.8)
        bne = solve_bayesian_equilibrium(game, prices)
        for k, t in enumerate(types):
            e, c = bne.request(k)
            assert 2.0 * e + 1.0 * c <= t.budget * (1 + 1e-6)

    def test_no_profitable_type_deviation(self, types, prices):
        """Grid scan: no type improves by deviating from the BNE."""
        game = BayesianMinerGame(5, types, reward=1000.0, fork_rate=0.2,
                                 h=0.8)
        bne = solve_bayesian_equilibrium(game, prices)
        rng = np.random.default_rng(0)
        for k, t in enumerate(types):
            star = float(bne.utilities[k])
            for _ in range(60):
                e = rng.uniform(0, t.budget / 2.0)
                c = rng.uniform(0, t.budget)
                if 2.0 * e + c > t.budget:
                    continue
                u = game.expected_utility(k, e, c, bne.strategy, prices)
                assert u <= star + 1e-4 * max(abs(star), 1.0)
