"""Multi-ESP Bertrand-Edgeworth competition."""

import numpy as np
import pytest

from repro.core.multi_edge import (EdgeSupplier, MultiEdgeMarket,
                                   best_response_price, clear_market,
                                   symmetric_equilibrium,
                                   undercutting_dynamics)
from repro.exceptions import ConfigurationError


@pytest.fixture
def market():
    return MultiEdgeMarket(n=5, reward=1000.0, beta=0.2, h=1.0, p_c=1.0)


class TestDemandCurve:
    def test_exclusion_price(self, market):
        # P_c D / a = 1 * 1.0 / 0.8
        assert market.exclusion_price == pytest.approx(1.25)

    def test_mixed_regime_matches_corollary1(self, market):
        # n k β h / (p - p_c) = 5*160*0.2/1 = 160 at p=2.
        assert market.demand(2.0) == pytest.approx(160.0)

    def test_continuous_at_kink(self, market):
        kink = market.exclusion_price
        assert market.demand(kink * (1 - 1e-9)) == pytest.approx(
            market.demand(kink * (1 + 1e-9)), rel=1e-6)

    def test_inverse_demand_roundtrip(self, market):
        for p in (1.1, 1.25, 2.0, 3.0):
            E = market.demand(p)
            assert market.marginal_value(E) == pytest.approx(p, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiEdgeMarket(n=1, reward=1.0, beta=0.1, h=1.0, p_c=1.0)
        with pytest.raises(ConfigurationError):
            MultiEdgeMarket(n=5, reward=1.0, beta=1.0, h=1.0, p_c=1.0)


class TestClearing:
    def test_cheapest_first(self, market):
        suppliers = [EdgeSupplier(price=3.0, capacity=100.0),
                     EdgeSupplier(price=2.0, capacity=50.0)]
        clearing = clear_market(market, suppliers)
        # Demand at p=2 is 160; cheap supplier sells out (50); residual
        # demand at p=3 is 80, of which 50 already filled -> 30 more.
        assert clearing.sales[1] == pytest.approx(50.0)
        assert clearing.sales[0] == pytest.approx(30.0)
        assert clearing.marginal_price == 3.0

    def test_equal_prices_share_proportionally(self, market):
        suppliers = [EdgeSupplier(price=2.0, capacity=300.0),
                     EdgeSupplier(price=2.0, capacity=100.0)]
        clearing = clear_market(market, suppliers)
        assert clearing.total_edge == pytest.approx(160.0)
        assert clearing.sales[0] == pytest.approx(120.0)
        assert clearing.sales[1] == pytest.approx(40.0)

    def test_profits_definition(self, market):
        suppliers = [EdgeSupplier(price=2.0, capacity=1e6, unit_cost=0.5)]
        clearing = clear_market(market, suppliers)
        assert clearing.profits[0] == pytest.approx(1.5 * 160.0)

    def test_empty_rejected(self, market):
        with pytest.raises(ConfigurationError):
            clear_market(market, [])


class TestMonopoly:
    def test_monopoly_prices_at_exclusion_kink(self, market):
        suppliers = [EdgeSupplier(price=2.0, capacity=1e6, unit_cost=0.2)]
        p = best_response_price(market, suppliers, 0)
        assert p == pytest.approx(1.25, rel=1e-3)

    def test_expensive_monopolist_prices_high(self, market):
        # Cost above the cloud price: serving the premium segment only.
        suppliers = [EdgeSupplier(price=2.0, capacity=1e6, unit_cost=1.5)]
        p = best_response_price(market, suppliers, 0)
        assert p > 1.5


class TestSymmetricEquilibrium:
    def test_ample_capacity_is_bertrand(self, market):
        eq = symmetric_equilibrium(market, 2, 1e6, 0.2)
        assert eq.regime == "bertrand"
        assert eq.price == pytest.approx(0.2)
        assert eq.per_supplier_profit == pytest.approx(0.0, abs=1e-9)
        assert eq.verified

    def test_scarce_capacity_clears_above_cost(self, market):
        eq = symmetric_equilibrium(market, 2, 40.0, 0.2)
        assert eq.regime == "clearing"
        # v(80) = 1 + 160/80 = 3.
        assert eq.price == pytest.approx(3.0)
        assert eq.per_supplier_sales == pytest.approx(40.0)
        assert eq.verified

    def test_more_competitors_lower_price(self, market):
        prices = [symmetric_equilibrium(market, m, 60.0, 0.2).price
                  for m in (2, 3, 4)]
        assert prices[0] > prices[1] > prices[2]

    def test_monopoly_rejected(self, market):
        with pytest.raises(ConfigurationError):
            symmetric_equilibrium(market, 1, 100.0, 0.2)


class TestDynamics:
    def test_duopoly_descends_to_cost(self, market):
        suppliers = [EdgeSupplier(price=1.25, capacity=1e6, unit_cost=0.2)
                     for _ in range(2)]
        res = undercutting_dynamics(market, suppliers, max_rounds=200,
                                    tick=0.05)
        assert res.converged
        for s in res.suppliers:
            assert s.price == pytest.approx(0.2, abs=0.05)

    def test_scarce_duopoly_rests_at_clearing(self, market):
        suppliers = [EdgeSupplier(price=2.0, capacity=40.0, unit_cost=0.2)
                     for _ in range(2)]
        res = undercutting_dynamics(market, suppliers, max_rounds=100,
                                    tick=0.01)
        assert res.converged
        for s in res.suppliers:
            assert s.price == pytest.approx(3.0, rel=0.02)

    def test_validation(self, market):
        suppliers = [EdgeSupplier(price=2.0, capacity=10.0)]
        with pytest.raises(ConfigurationError):
            best_response_price(market, suppliers, 5)
        with pytest.raises(ConfigurationError):
            best_response_price(market, suppliers, 0, tick=0.9)
