"""Winning-probability model (Section III): identities and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import winning

units = st.lists(
    st.tuples(st.floats(0.01, 100.0), st.floats(0.01, 100.0)),
    min_size=2, max_size=8)


def _split(pairs):
    e = np.array([p[0] for p in pairs])
    c = np.array([p[1] for p in pairs])
    return e, c


class TestTheorem1:
    @given(units, st.floats(0.0, 0.99))
    @settings(max_examples=200, deadline=None)
    def test_full_satisfaction_sums_to_one(self, pairs, beta):
        e, c = _split(pairs)
        assert float(np.sum(winning.w_full(e, c, beta))) == pytest.approx(
            1.0, abs=1e-9)

    @given(units, st.floats(0.0, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_components_sum_to_full(self, pairs, beta):
        e, c = _split(pairs)
        total = winning.w_edge_component(e, c, beta) + \
            winning.w_cloud_component(e, c, beta)
        assert np.allclose(total, winning.w_full(e, c, beta), atol=1e-12)

    @given(units, st.floats(0.0, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_probabilities_in_unit_interval(self, pairs, beta):
        e, c = _split(pairs)
        w = winning.w_full(e, c, beta)
        assert np.all(w >= -1e-12)
        assert np.all(w <= 1.0 + 1e-12)


class TestConnectedIdentity:
    @given(units, st.floats(0.0, 0.99), st.floats(0.01, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_mixture_equals_simplified_form(self, pairs, beta, h):
        """Eq. (9): h W^h + (1-h) W^{1-h} == (1-β)(e+c)/S + βh e/E."""
        e, c = _split(pairs)
        mixture = h * winning.w_full(e, c, beta) + \
            (1.0 - h) * winning.w_transfer_failure(e, c, beta)
        simplified = winning.w_connected(e, c, beta, h)
        assert np.allclose(mixture, simplified, atol=1e-12)

    def test_standalone_is_h_one(self):
        e = np.array([1.0, 2.0])
        c = np.array([3.0, 4.0])
        assert np.allclose(winning.w_standalone(e, c, 0.3),
                           winning.w_connected(e, c, 0.3, 1.0))


class TestFailureModes:
    def test_transfer_failure_scales_with_total(self):
        e = np.array([10.0, 0.0])
        c = np.array([0.0, 10.0])
        w = winning.w_transfer_failure(e, c, 0.2)
        assert np.allclose(w, [0.4, 0.4])

    def test_reject_failure_removes_own_edge(self):
        # Eq. (8): W = (1-β) c_i / (S - e_i).
        e = np.array([10.0, 0.0])
        c = np.array([5.0, 5.0])
        w = winning.w_reject_failure(e, c, 0.2)
        assert w[0] == pytest.approx(0.8 * 5.0 / 10.0)
        assert w[1] == pytest.approx(0.8 * 5.0 / 20.0)

    def test_reject_failure_degenerate_pool(self):
        e = np.array([10.0, 0.0])
        c = np.array([0.0, 0.0])
        w = winning.w_reject_failure(e, c, 0.2)
        assert w[0] == 0.0


class TestDegenerate:
    def test_empty_pool_gives_zero(self):
        z = np.zeros(3)
        assert np.all(winning.w_full(z, z, 0.2) == 0.0)
        assert np.all(winning.w_connected(z, z, 0.2, 0.5) == 0.0)

    def test_no_edge_power_no_discount(self):
        # With E = 0 cloud blocks only collide with equally-slow cloud
        # blocks and cannot be beaten.
        e = np.zeros(3)
        c = np.array([1.0, 2.0, 3.0])
        w = winning.w_full(e, c, 0.5)
        assert np.allclose(w, c / 6.0)

    def test_no_cloud_power(self):
        e = np.array([2.0, 2.0])
        c = np.zeros(2)
        w = winning.w_full(e, c, 0.5)
        assert np.allclose(w, [0.5, 0.5])


class TestGradients:
    @given(units, st.floats(0.01, 0.95), st.floats(0.05, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_gradients_match_finite_differences(self, pairs, beta, h):
        e, c = _split(pairs)
        de, dc = winning.w_connected_gradients(e, c, beta, h)
        eps = 1e-6
        for i in range(len(e)):
            e_hi = e.copy()
            e_hi[i] += eps
            e_lo = e.copy()
            e_lo[i] -= eps
            fd_e = (winning.w_connected(e_hi, c, beta, h)[i]
                    - winning.w_connected(e_lo, c, beta, h)[i]) / (2 * eps)
            c_hi = c.copy()
            c_hi[i] += eps
            c_lo = c.copy()
            c_lo[i] -= eps
            fd_c = (winning.w_connected(e, c_hi, beta, h)[i]
                    - winning.w_connected(e, c_lo, beta, h)[i]) / (2 * eps)
            scale = max(abs(fd_e), abs(fd_c), 1e-3)
            assert abs(de[i] - fd_e) < 1e-4 * scale + 1e-7
            assert abs(dc[i] - fd_c) < 1e-4 * scale + 1e-7

    def test_edge_gradient_exceeds_cloud(self):
        e = np.array([5.0, 5.0])
        c = np.array([5.0, 5.0])
        de, dc = winning.w_connected_gradients(e, c, 0.3, 0.9)
        assert np.all(de >= dc)


class TestAggregate:
    def test_aggregate_sums(self):
        E, C, S = winning.aggregate(np.array([1.0, 2.0]),
                                    np.array([3.0, 4.0]))
        assert (E, C, S) == (3.0, 7.0, 10.0)
