"""Risk aversion and mining pools (EXT8 machinery)."""

import math

import pytest

from repro.core import Prices
from repro.core.risk import (RiskAverseGame, certainty_equivalent,
                             pooled_certainty_equivalent,
                             solve_risk_averse_equilibrium)
from repro.exceptions import ConfigurationError


@pytest.fixture
def prices():
    return Prices(2.0, 1.0)


def _game(**kw):
    defaults = dict(n=5, reward=1000.0, fork_rate=0.2, h=0.8,
                    budget=200.0)
    defaults.update(kw)
    return RiskAverseGame(**defaults)


class TestCertaintyEquivalent:
    def test_risk_neutral_limit(self):
        assert certainty_equivalent(0.2, 1000.0, 0.0) == 200.0

    def test_small_a_approaches_mean(self):
        assert certainty_equivalent(0.2, 1000.0, 1e-7) == pytest.approx(
            200.0, rel=1e-3)

    def test_risk_aversion_discounts(self):
        assert certainty_equivalent(0.2, 1000.0, 0.005) < 200.0

    def test_monotone_in_win_prob(self):
        ces = [certainty_equivalent(w, 1000.0, 0.003)
               for w in (0.1, 0.3, 0.6, 0.9)]
        assert all(b > a for a, b in zip(ces, ces[1:]))

    def test_convex_in_win_prob_below_mean_line(self):
        # CE is increasing and convex in W, lying below the risk-neutral
        # line R*W (the risk discount).
        a, b = 0.2, 0.4
        mid = certainty_equivalent(0.3, 1000.0, 0.003)
        avg = 0.5 * (certainty_equivalent(a, 1000.0, 0.003)
                     + certainty_equivalent(b, 1000.0, 0.003))
        assert mid < avg
        for w in (0.1, 0.4, 0.8):
            assert certainty_equivalent(w, 1000.0, 0.003) < 1000.0 * w

    def test_degenerate_probabilities(self):
        assert certainty_equivalent(0.0, 1000.0, 0.01) == pytest.approx(
            0.0)
        assert certainty_equivalent(1.0, 1000.0, 0.01) == pytest.approx(
            1000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            certainty_equivalent(1.5, 1000.0, 0.01)
        with pytest.raises(ConfigurationError):
            certainty_equivalent(0.5, -1.0, 0.01)
        with pytest.raises(ConfigurationError):
            certainty_equivalent(0.5, 1.0, -0.01)


class TestPooling:
    def test_pooling_raises_ce(self):
        solo = pooled_certainty_equivalent(0.2, 1000.0, 0.005, 1)
        pooled = pooled_certainty_equivalent(0.2, 1000.0, 0.005, 4)
        assert pooled > solo

    def test_pooling_neutral_when_risk_neutral(self):
        solo = pooled_certainty_equivalent(0.1, 1000.0, 0.0, 1)
        pooled = pooled_certainty_equivalent(0.1, 1000.0, 0.0, 5)
        assert solo == pytest.approx(pooled)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pooled_certainty_equivalent(0.1, 1000.0, 0.01, 0)


class TestEquilibrium:
    def test_risk_neutral_matches_nep(self, prices):
        from repro.core import homogeneous, solve_connected_equilibrium
        eq = solve_risk_averse_equilibrium(_game(risk_aversion=0.0),
                                           prices)
        ref = solve_connected_equilibrium(
            homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8),
            prices)
        assert eq.n_active == 5
        assert eq.e == pytest.approx(float(ref.e[0]), rel=1e-3)
        assert eq.c == pytest.approx(float(ref.c[0]), rel=1e-3)

    def test_risk_aversion_suppresses_demand(self, prices):
        neutral = solve_risk_averse_equilibrium(_game(risk_aversion=0.0),
                                                prices)
        averse = solve_risk_averse_equilibrium(
            _game(risk_aversion=0.001), prices)
        assert averse.e < neutral.e
        assert averse.c < neutral.c

    def test_participation_shrinks_with_risk(self, prices):
        mild = solve_risk_averse_equilibrium(_game(risk_aversion=0.001),
                                             prices)
        strong = solve_risk_averse_equilibrium(_game(risk_aversion=0.01),
                                               prices)
        assert mild.n_active == 5
        assert strong.n_active < mild.n_active

    def test_equilibrium_utility_nonnegative(self, prices):
        for a in (0.001, 0.003, 0.008):
            eq = solve_risk_averse_equilibrium(_game(risk_aversion=a),
                                               prices)
            assert eq.utility >= -1e-6
            assert eq.converged

    def test_pooling_restores_participation(self, prices):
        solo = solve_risk_averse_equilibrium(
            _game(risk_aversion=0.002, pool_size=1), prices)
        pooled = solve_risk_averse_equilibrium(
            _game(risk_aversion=0.002, pool_size=2), prices)
        assert pooled.n_active >= solo.n_active
        agg_solo = solo.n_active * (solo.e + solo.c)
        agg_pooled = pooled.n_active * (pooled.e + pooled.c)
        assert agg_pooled > agg_solo

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _game(n=1)
        with pytest.raises(ConfigurationError):
            _game(risk_aversion=-1.0)
        with pytest.raises(ConfigurationError):
            _game(pool_size=9)
