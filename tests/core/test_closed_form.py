"""Closed-form results: Theorems 3/4, Corollary 1, Table II."""

import math

import numpy as np
import pytest

from repro.core import (Prices, binding_budget_threshold,
                        corollary1_interior, csp_best_response_binding,
                        csp_best_response_interior,
                        homogeneous_miner_equilibrium, table2_connected,
                        table2_standalone, theorem3_binding,
                        theorem4_sp_equilibrium)
from repro.exceptions import ConfigurationError, InfeasibleGameError


class TestTheorem3:
    def test_budget_identity(self):
        """P_e e* + P_c c* == B exactly (derived in DESIGN.md)."""
        prices = Prices(2.0, 1.0)
        for budget in (10.0, 50.0, 120.0):
            eq = theorem3_binding(5, budget, 0.2, 0.8, prices)
            spend = 2.0 * eq.e + 1.0 * eq.c
            assert spend == pytest.approx(budget, rel=1e-12)

    def test_positive_requests_under_condition(self):
        prices = Prices(2.0, 1.0)
        eq = theorem3_binding(5, 100.0, 0.2, 0.8, prices)
        assert eq.e > 0 and eq.c > 0

    def test_rejects_condition_violation(self):
        # P_c above the Theorem 3 bound.
        with pytest.raises(InfeasibleGameError):
            theorem3_binding(5, 100.0, 0.2, 0.8, Prices(2.0, 1.7))

    def test_rejects_inverted_prices(self):
        with pytest.raises(InfeasibleGameError):
            theorem3_binding(5, 100.0, 0.2, 0.8, Prices(1.0, 2.0))

    def test_requests_scale_linearly_with_budget(self):
        prices = Prices(2.0, 1.0)
        a = theorem3_binding(5, 50.0, 0.2, 0.8, prices)
        b = theorem3_binding(5, 100.0, 0.2, 0.8, prices)
        assert b.e == pytest.approx(2 * a.e)
        assert b.c == pytest.approx(2 * a.c)


class TestCorollary1:
    def test_reference_values(self):
        # e* = βhR(n-1)/(n²(P_e-P_c)) = 0.16*1000*4/25 = 25.6
        eq = corollary1_interior(5, 1000.0, 0.2, 0.8, Prices(2.0, 1.0))
        assert eq.e == pytest.approx(25.6)
        # e*+c* = (1-β)R(n-1)/(n² P_c) = 128
        assert eq.e + eq.c == pytest.approx(128.0)

    def test_total_independent_of_p_e(self):
        t1 = corollary1_interior(5, 1000.0, 0.2, 0.8, Prices(2.0, 1.0))
        t2 = corollary1_interior(5, 1000.0, 0.2, 0.8, Prices(3.0, 1.0))
        assert t1.e + t1.c == pytest.approx(t2.e + t2.c)

    def test_paper_h1_instance(self):
        """Corollary 1 as printed: c* = R(n-1)[(1-β)P_e - P_c]/(n²P_c(P_e-P_c))."""
        n, R, beta = 5, 1000.0, 0.2
        prices = Prices(2.0, 1.0)
        eq = corollary1_interior(n, R, beta, 1.0, prices)
        expected_c = R * (n - 1) * ((1 - beta) * 2.0 - 1.0) / (
            n * n * 1.0 * (2.0 - 1.0))
        assert eq.c == pytest.approx(expected_c)


class TestThreshold:
    def test_threshold_value(self):
        # R(n-1)(1-β+βh)/n² = 1000*4*0.96/25
        assert binding_budget_threshold(5, 1000.0, 0.2, 0.8) == \
            pytest.approx(153.6)

    def test_unified_selector(self):
        prices = Prices(2.0, 1.0)
        below = homogeneous_miner_equilibrium(5, 100.0, 1000.0, 0.2, 0.8,
                                              prices)
        above = homogeneous_miner_equilibrium(5, 200.0, 1000.0, 0.2, 0.8,
                                              prices)
        assert below.regime == "binding"
        assert above.regime == "interior"

    def test_continuity_at_threshold(self):
        """The two regimes agree exactly at B = threshold."""
        prices = Prices(2.0, 1.0)
        thr = binding_budget_threshold(5, 1000.0, 0.2, 0.8)
        binding = theorem3_binding(5, thr, 0.2, 0.8, prices)
        interior = corollary1_interior(5, 1000.0, 0.2, 0.8, prices)
        assert binding.e == pytest.approx(interior.e, rel=1e-10)
        assert binding.c == pytest.approx(interior.c, rel=1e-10)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            binding_budget_threshold(1, 1000.0, 0.2, 0.8)
        with pytest.raises(ConfigurationError):
            binding_budget_threshold(5, -1.0, 0.2, 0.8)


class TestCSPBestResponse:
    def test_interior_of_feasible_interval(self):
        p_c = csp_best_response_binding(2.0, 5, 100.0, 0.2, 0.8, 0.1)
        assert 0.1 < p_c < 0.8 * 2.0 / 0.96

    def test_first_order_condition(self):
        """Numerically verify ∂V_c/∂P_c = 0 at the returned price."""
        p_e, n, B, beta, h, cc = 2.0, 5, 100.0, 0.2, 0.8, 0.1
        p_c = csp_best_response_binding(p_e, n, B, beta, h, cc)
        a, g = 1 - beta, beta * h
        D = a + g

        def profit(p):
            c = B * (a * (p_e - p) - g * p) / (p * D * (p_e - p))
            return n * (p - cc) * c

        eps = 1e-6
        deriv = (profit(p_c + eps) - profit(p_c - eps)) / (2 * eps)
        assert abs(deriv) < 1e-3 * max(profit(p_c), 1.0)

    def test_interior_variant_foc(self):
        p_e, n, R, beta, h, cc = 2.0, 5, 1000.0, 0.2, 0.8, 0.1
        p_c = csp_best_response_interior(p_e, n, R, beta, h, cc)
        a, g = 1 - beta, beta * h
        k = R * (n - 1) / (n * n)

        def profit(p):
            return n * (p - cc) * k * (a / p - g / (p_e - p))

        eps = 1e-6
        deriv = (profit(p_c + eps) - profit(p_c - eps)) / (2 * eps)
        assert abs(deriv) < 1e-3 * max(profit(p_c), 1.0)

    def test_infeasible_when_cost_exceeds_bound(self):
        with pytest.raises(InfeasibleGameError):
            csp_best_response_binding(1.0, 5, 100.0, 0.2, 0.8, 5.0)


class TestTheorem4:
    def test_equilibrium_structure(self):
        se = theorem4_sp_equilibrium(5, 100.0, 1000.0, 0.2, 0.8, 0.2, 0.1)
        assert se.prices.p_e > se.prices.p_c > 0.1
        assert se.v_e > 0 and se.v_c > 0
        # Miner side consistent with Theorem 3 at those prices.
        assert se.miner.regime == "binding"

    def test_csp_cannot_improve(self):
        """No profitable unilateral CSP price deviation."""
        se = theorem4_sp_equilibrium(5, 100.0, 1000.0, 0.2, 0.8, 0.2, 0.1)
        a, g = 0.8, 0.16
        D = a + g
        p_e = se.prices.p_e

        def csp_profit(p_c):
            c = 100.0 * (a * (p_e - p_c) - g * p_c) / (
                p_c * D * (p_e - p_c))
            return 5 * (p_c - 0.1) * c

        star = csp_profit(se.prices.p_c)
        for f in (0.9, 0.95, 1.05, 1.1):
            p = se.prices.p_c * f
            if p < a * p_e / D:
                assert csp_profit(p) <= star * (1 + 1e-6)

    def test_esp_price_grows_with_cost(self):
        p_prev = 0.0
        for c_e in (0.1, 0.3, 0.6):
            se = theorem4_sp_equilibrium(5, 100.0, 1000.0, 0.2, 0.8, c_e, 0.1)
            assert se.prices.p_e > p_prev
            p_prev = se.prices.p_e


class TestTableII:
    def test_standalone_closed_forms(self):
        se = table2_standalone(5, 1000.0, 0.2, 80.0, 0.2, 0.1)
        n, k, a = 5, 1000.0 * 4 / 25, 0.8
        assert se.prices.p_c == pytest.approx(
            math.sqrt(n * k * a * 0.1 / 80.0))
        assert se.prices.p_e == pytest.approx(
            se.prices.p_c + n * k * 0.2 / 80.0)
        assert se.miner.e == pytest.approx(80.0 / 5)
        assert se.miner.total == pytest.approx(n * k * a / se.prices.p_c)

    def test_standalone_requires_positive_cloud_cost(self):
        with pytest.raises(ConfigurationError):
            table2_standalone(5, 1000.0, 0.2, 80.0, 0.2, 0.0)

    def test_standalone_rejects_slack_capacity(self):
        # Enormous capacity => the constraint would not bind.
        with pytest.raises(InfeasibleGameError):
            table2_standalone(5, 1000.0, 0.2, 1e9, 0.2, 0.1)

    def test_standalone_esp_prices_higher(self):
        """§VI-B: standalone mode gives the ESP a higher price and more
        profit, and the CSP less."""
        sa = table2_standalone(5, 1000.0, 0.2, 80.0, 0.2, 0.1)
        conn = table2_connected(5, 1000.0, 0.2, 0.8, 0.2, 0.1)
        assert sa.prices.p_e > conn.prices.p_e
        assert sa.v_e > conn.v_e

    def test_connected_consistency_with_corollary1(self):
        se = table2_connected(5, 1000.0, 0.2, 0.8, 0.2, 0.1)
        cf = corollary1_interior(5, 1000.0, 0.2, 0.8, se.prices)
        assert se.miner.e == pytest.approx(cf.e)
        assert se.miner.c == pytest.approx(cf.c)
