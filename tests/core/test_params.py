"""GameParameters / Prices validation and derived properties."""

import numpy as np
import pytest

from repro.core.params import (EdgeMode, GameParameters, Prices, homogeneous,
                               mixed_strategy_price_bound)
from repro.exceptions import ConfigurationError


class TestPrices:
    def test_valid(self):
        p = Prices(2.0, 1.0)
        assert p.premium() == 1.0
        assert np.array_equal(p.as_array, [2.0, 1.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            Prices(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            Prices(2.0, -1.0)

    def test_negative_premium_allowed(self):
        # P_e < P_c is unusual but not invalid (solvers handle it).
        assert Prices(1.0, 2.0).premium() == -1.0


class TestMixedBound:
    def test_formula(self):
        # (1-β) P_e / (1-β+βh)
        assert mixed_strategy_price_bound(0.2, 0.8, 2.0) == pytest.approx(
            0.8 * 2.0 / 0.96)

    def test_h_one_reduces(self):
        assert mixed_strategy_price_bound(0.2, 1.0, 2.0) == pytest.approx(
            1.6)

    def test_beta_zero_gives_pe(self):
        assert mixed_strategy_price_bound(0.0, 0.5, 2.0) == 2.0


class TestGameParameters:
    def test_basic_properties(self, connected_params):
        assert connected_params.n == 5
        assert connected_params.is_homogeneous
        assert connected_params.effective_h == 0.8

    def test_budget_array_read_only(self, connected_params):
        arr = connected_params.budget_array
        with pytest.raises(ValueError):
            arr[0] = -1

    def test_heterogeneous_flag(self, heterogeneous_params):
        assert not heterogeneous_params.is_homogeneous

    def test_single_miner_rejected(self):
        with pytest.raises(ConfigurationError):
            GameParameters(reward=1.0, fork_rate=0.1, budgets=[10.0])

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            GameParameters(reward=1.0, fork_rate=0.1, budgets=[10.0, 0.0])

    def test_fork_rate_range(self):
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=1.0, fork_rate=1.0)
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=1.0, fork_rate=-0.1)

    def test_h_range(self):
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=1.0, fork_rate=0.1, h=0.0)
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=1.0, fork_rate=0.1, h=1.1)

    def test_standalone_requires_capacity(self):
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=1.0, fork_rate=0.1,
                        mode=EdgeMode.STANDALONE)

    def test_standalone_rejects_h(self):
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=1.0, fork_rate=0.1,
                        mode=EdgeMode.STANDALONE, e_max=5.0, h=0.5)

    def test_standalone_effective_h_is_one(self, standalone_params):
        assert standalone_params.effective_h == 1.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=1.0, fork_rate=0.1, edge_cost=-1.0)

    def test_with_mode_roundtrip(self, connected_params):
        sa = connected_params.with_mode(EdgeMode.STANDALONE, e_max=50.0)
        assert sa.mode is EdgeMode.STANDALONE
        assert sa.e_max == 50.0
        assert sa.h == 1.0
        back = sa.with_mode(EdgeMode.CONNECTED, h=0.7)
        assert back.mode is EdgeMode.CONNECTED
        assert back.h == 0.7
        assert back.e_max is None

    def test_with_budgets(self, connected_params):
        other = connected_params.with_budgets([10.0] * 5)
        assert other.budget_array[0] == 10.0
        assert connected_params.budget_array[0] == 200.0

    def test_validate_prices_accepts_mixed(self, connected_params):
        connected_params.validate_prices(Prices(2.0, 1.0))

    def test_validate_prices_rejects_above_bound(self, connected_params):
        bound = connected_params.mixed_price_bound(2.0)
        with pytest.raises(ConfigurationError):
            connected_params.validate_prices(Prices(2.0, bound + 0.01))

    def test_reward_positive(self):
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=0.0, fork_rate=0.1)

    def test_negative_d_avg_rejected(self):
        with pytest.raises(ConfigurationError):
            homogeneous(2, 10.0, reward=1.0, fork_rate=0.1, d_avg=-1.0)


class TestFromCalibration:
    def test_builds_game_from_topology(self):
        from repro.core import from_calibration
        from repro.network import (GossipModel, calibrate_game_delays,
                                   edge_cloud_topology)

        cal = calibrate_game_delays(edge_cloud_topology(10, seed=0),
                                    GossipModel(block_size=1e6))
        params = from_calibration(cal, 5, 200.0, reward=1000.0, h=0.8)
        assert params.fork_rate == pytest.approx(cal.fork_rate)
        assert params.d_avg == pytest.approx(cal.d_avg)
        assert params.n == 5
        assert params.h == 0.8

    def test_doctest_example(self):
        import doctest
        import repro.core.params as mod
        results = doctest.testmod(mod)
        assert results.failed == 0
