"""Property-based comparative statics of the miner equilibrium.

These encode the *directions* the paper's sweeps rely on as universally
quantified properties over random parameter draws, rather than spot
checks at the default setup.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium,
                        solve_standalone_equilibrium)

# Parameter draws kept inside the well-posed region: mixed-strategy
# condition enforced by construction via pc_frac of the Theorem-3 bound.
params_strategy = st.fixed_dictionaries({
    "n": st.integers(2, 8),
    "budget": st.floats(30.0, 500.0),
    "reward": st.floats(300.0, 3000.0),
    "beta": st.floats(0.05, 0.45),
    "h": st.floats(0.3, 1.0),
    "p_e": st.floats(1.2, 4.0),
    "pc_frac": st.floats(0.3, 0.9),
})


def _solve(draw, **overrides):
    cfg = dict(draw)
    cfg.update(overrides)
    bound = (1 - cfg["beta"]) * cfg["p_e"] / (1 - cfg["beta"]
                                              + cfg["beta"] * cfg["h"])
    p_c = cfg["pc_frac"] * bound
    params = homogeneous(cfg["n"], cfg["budget"], reward=cfg["reward"],
                         fork_rate=cfg["beta"], h=cfg["h"])
    return solve_connected_equilibrium(
        params, Prices(cfg["p_e"], p_c), tol=1e-10), p_c


class TestPriceStatics:
    @given(params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_edge_demand_rises_with_cloud_price(self, draw):
        lo, _ = _solve(draw, pc_frac=min(draw["pc_frac"], 0.6))
        hi, _ = _solve(draw, pc_frac=min(draw["pc_frac"], 0.6) + 0.25)
        assert hi.total_edge >= lo.total_edge * (1 - 1e-6)

    @given(params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_edge_demand_falls_with_edge_price(self, draw):
        lo, _ = _solve(draw)
        hi, _ = _solve(draw, p_e=draw["p_e"] * 1.3,
                       pc_frac=draw["pc_frac"] / 1.3)
        # Same absolute P_c (bound scales with p_e, frac rescaled), higher
        # P_e: edge demand cannot rise.
        assert hi.total_edge <= lo.total_edge * (1 + 1e-6)


class TestStructuralStatics:
    @given(params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_higher_fork_rate_cuts_cloud_share(self, draw):
        beta = min(draw["beta"], 0.35)
        lo, _ = _solve(draw, beta=beta)
        hi, _ = _solve(draw, beta=beta + 0.1)
        share_lo = lo.total_cloud / lo.total
        share_hi = hi.total_cloud / hi.total
        assert share_hi <= share_lo * (1 + 1e-6)

    @given(params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_bigger_budgets_never_shrink_totals(self, draw):
        lo, _ = _solve(draw)
        hi, _ = _solve(draw, budget=draw["budget"] * 1.5)
        assert hi.total >= lo.total * (1 - 1e-6)

    @given(params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_spending_within_budget(self, draw):
        eq, _ = _solve(draw)
        assert np.all(eq.spending <= draw["budget"] * (1 + 1e-8))

    @given(params_strategy)
    @settings(max_examples=30, deadline=None)
    def test_equilibrium_winning_probabilities_valid(self, draw):
        from repro.core.winning import w_connected
        eq, _ = _solve(draw)
        w = w_connected(eq.e, eq.c, draw["beta"], draw["h"])
        assert np.all(w >= -1e-12)
        assert float(np.sum(w)) <= 1.0 + 1e-9


class TestCapacityStatics:
    @given(st.integers(2, 6), st.floats(0.05, 0.4),
           st.floats(10.0, 200.0))
    @settings(max_examples=30, deadline=None)
    def test_capacity_caps_edge_demand(self, n, beta, e_max):
        params = homogeneous(n, 5000.0, reward=1000.0, fork_rate=beta,
                             mode=EdgeMode.STANDALONE, e_max=e_max)
        eq = solve_standalone_equilibrium(params, Prices(2.0, 1.0))
        assert eq.total_edge <= e_max * (1 + 1e-6)

    @given(st.integers(2, 6), st.floats(0.05, 0.4))
    @settings(max_examples=30, deadline=None)
    def test_capacity_relaxation_weakly_raises_edge(self, n, beta):
        params_lo = homogeneous(n, 5000.0, reward=1000.0, fork_rate=beta,
                                mode=EdgeMode.STANDALONE, e_max=30.0)
        params_hi = homogeneous(n, 5000.0, reward=1000.0, fork_rate=beta,
                                mode=EdgeMode.STANDALONE, e_max=90.0)
        prices = Prices(2.0, 1.0)
        eq_lo = solve_standalone_equilibrium(params_lo, prices)
        eq_hi = solve_standalone_equilibrium(params_hi, prices)
        assert eq_hi.total_edge >= eq_lo.total_edge * (1 - 1e-6)
