"""Standalone-mode GNEP: variational equilibrium, capacity complementarity,
and solver cross-validation (Theorem 5 / Algorithm 2 machinery)."""

import numpy as np
import pytest

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_standalone_equilibrium,
                        solve_standalone_extragradient,
                        verify_miner_equilibrium)
from repro.core.gnep import edge_demand
from repro.exceptions import ConfigurationError


class TestCapacityComplementarity:
    def test_slack_capacity_keeps_nu_zero(self, prices):
        params = homogeneous(5, 1000.0, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=500.0)
        eq = solve_standalone_equilibrium(params, prices)
        assert eq.nu == 0.0
        assert eq.total_edge < 500.0

    def test_binding_capacity_positive_nu(self, standalone_params, prices):
        eq = solve_standalone_equilibrium(standalone_params, prices)
        assert eq.nu > 0.0
        assert eq.total_edge == pytest.approx(80.0, rel=1e-5)

    def test_nu_matches_analytic_value(self, prices):
        """Sufficient budget: ν* = n k β / E_max - (P_e - P_c)."""
        for e_max in (20.0, 40.0, 80.0):
            params = homogeneous(5, 5000.0, reward=1000.0, fork_rate=0.2,
                                 mode=EdgeMode.STANDALONE, e_max=e_max)
            eq = solve_standalone_equilibrium(params, prices)
            expected = 5 * (1000.0 * 4 / 25) * 0.2 / e_max - 1.0
            assert eq.nu == pytest.approx(expected, rel=1e-3)

    def test_capacity_never_exceeded(self, prices):
        for e_max in (10.0, 50.0, 100.0, 200.0):
            params = homogeneous(5, 800.0, reward=1000.0, fork_rate=0.2,
                                 mode=EdgeMode.STANDALONE, e_max=e_max)
            eq = solve_standalone_equilibrium(params, prices)
            assert eq.total_edge <= e_max * (1 + 1e-6)


class TestVariationalEquilibrium:
    def test_is_generalized_nash(self, standalone_params, prices):
        eq = solve_standalone_equilibrium(standalone_params, prices)
        assert verify_miner_equilibrium(eq)

    def test_symmetric_profile_for_homogeneous(self, standalone_params,
                                               prices):
        eq = solve_standalone_equilibrium(standalone_params, prices)
        assert np.allclose(eq.e, eq.e[0], atol=1e-5)
        assert np.allclose(eq.c, eq.c[0], atol=1e-5)

    def test_total_units_mode_invariant(self, prices):
        """§IV-C.3: the aggregate S* is unchanged between modes at
        identical prices (sufficient budgets)."""
        conn = homogeneous(5, 5000.0, reward=1000.0, fork_rate=0.2, h=0.8)
        sa = conn.with_mode(EdgeMode.STANDALONE, e_max=80.0)
        from repro.core import solve_connected_equilibrium
        eq_c = solve_connected_equilibrium(conn, prices)
        eq_s = solve_standalone_equilibrium(sa, prices)
        assert eq_c.total == pytest.approx(eq_s.total, rel=1e-4)

    def test_standalone_buys_more_edge_than_connected(self, prices):
        """§IV-C.3 conclusion: connected mode discourages ESP purchases."""
        conn = homogeneous(5, 5000.0, reward=1000.0, fork_rate=0.2, h=0.8)
        sa = conn.with_mode(EdgeMode.STANDALONE, e_max=500.0)
        from repro.core import solve_connected_equilibrium
        eq_c = solve_connected_equilibrium(conn, prices)
        eq_s = solve_standalone_equilibrium(sa, prices)
        assert eq_s.total_edge > eq_c.total_edge


class TestSolverCrossValidation:
    def test_decomposition_vs_extragradient(self, standalone_params,
                                            prices):
        dec = solve_standalone_equilibrium(standalone_params, prices)
        ext = solve_standalone_extragradient(
            standalone_params, prices, tol=1e-8,
            initial=(dec.e * 1.1, dec.c * 0.9))
        assert np.allclose(dec.e, ext.e, atol=1e-4)
        assert np.allclose(dec.c, ext.c, atol=1e-4)
        assert dec.nu == pytest.approx(ext.nu, abs=1e-3)

    def test_extragradient_slack_capacity(self, prices):
        params = homogeneous(3, 300.0, reward=500.0, fork_rate=0.15,
                             mode=EdgeMode.STANDALONE, e_max=1000.0)
        dec = solve_standalone_equilibrium(params, prices)
        ext = solve_standalone_extragradient(
            params, prices, tol=1e-9, initial=(dec.e * 1.2, dec.c * 1.1))
        assert np.allclose(dec.e, ext.e, atol=1e-4)
        assert ext.nu == pytest.approx(0.0, abs=1e-6)


class TestEdgeDemandHelper:
    def test_demand_decreasing_in_nu(self, standalone_params, prices):
        previous = np.inf
        for nu in (0.0, 0.5, 1.0, 2.0, 4.0):
            eq = edge_demand(standalone_params, prices, nu=nu)
            assert eq.total_edge < previous + 1e-9
            previous = eq.total_edge

    def test_mode_guard(self, connected_params, prices):
        with pytest.raises(ConfigurationError):
            solve_standalone_equilibrium(connected_params, prices)


class TestVITheory:
    def test_miner_operator_monotone_on_feasible_samples(self, prices):
        """Theorem 2/5 rest on the monotonicity of F = -∂U; probe it on
        random feasible profiles of the default game."""
        import numpy as np
        from repro.core import homogeneous
        from repro.core.utility import miner_utility_gradients
        from repro.game.vi import monotonicity_gap

        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)

        def operator(x):
            e = x[:5]
            c = x[5:]
            du_de, du_dc = miner_utility_gradients(e, c, params, prices)
            return -np.concatenate([du_de, du_dc])

        rng = np.random.default_rng(3)
        # Sample interior profiles away from the degenerate origin.
        points = np.column_stack([
            rng.uniform(5.0, 45.0, size=(12, 5)),
            rng.uniform(20.0, 150.0, size=(12, 5)),
        ]).reshape(12, 10)
        # Interleave back to [e(5), c(5)] layout.
        pts = np.concatenate([points[:, :5], points[:, 5:]], axis=1)
        assert monotonicity_gap(operator, pts) > -1e-8
