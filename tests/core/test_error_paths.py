"""Failure-path coverage: solvers must fail loudly and informatively."""

import numpy as np
import pytest

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium, solve_stackelberg)
from repro.core.dynamic import DynamicGame, solve_dynamic_equilibrium
from repro.core.gnep import solve_standalone_extragradient
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.population import FixedPopulation


class TestSolverFailures:
    def test_nep_raise_on_failure_carries_report(self, connected_params,
                                                 prices):
        with pytest.raises(ConvergenceError) as exc:
            solve_connected_equilibrium(connected_params, prices,
                                        tol=1e-16, max_iter=2,
                                        raise_on_failure=True)
        assert exc.value.report is not None
        assert not exc.value.report.converged
        assert exc.value.report.iterations == 2

    def test_extragradient_honest_flag(self, standalone_params, prices):
        eq = solve_standalone_extragradient(standalone_params, prices,
                                            tol=1e-14, max_iter=5)
        assert not eq.report.converged

    def test_extragradient_raises_when_asked(self, standalone_params,
                                             prices):
        with pytest.raises(ConvergenceError):
            solve_standalone_extragradient(standalone_params, prices,
                                           tol=1e-14, max_iter=5,
                                           raise_on_failure=True)

    def test_stackelberg_rejects_bad_damping(self, binding_params):
        with pytest.raises(ValueError):
            solve_stackelberg(binding_params, scheme="best-response",
                              damping=0.0)

    def test_dynamic_rejects_bad_damping(self, prices):
        game = DynamicGame(FixedPopulation(5), reward=1000.0,
                           fork_rate=0.2, budget=200.0, weights="h")
        with pytest.raises(ConfigurationError):
            solve_dynamic_equilibrium(game, prices, damping=1.5)

    def test_dynamic_raise_on_failure(self, prices):
        game = DynamicGame(FixedPopulation(5), reward=1000.0,
                           fork_rate=0.2, budget=200.0, weights="h")
        with pytest.raises(ConvergenceError):
            solve_dynamic_equilibrium(game, prices, tol=1e-16,
                                      max_iter=2, raise_on_failure=True)


class TestReportsAreInformative:
    def test_failed_report_renders_residual(self, connected_params,
                                            prices):
        eq = solve_connected_equilibrium(connected_params, prices,
                                         tol=1e-16, max_iter=2)
        text = str(eq.report)
        assert "NOT converged" in text
        assert "residual" in text

    def test_summary_survives_failure(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices,
                                         tol=1e-16, max_iter=2)
        # The result object stays usable even when non-converged.
        assert eq.total > 0
        assert "NOT converged" in eq.summary()
