"""Utility/profit functions (Problems 1 and 2)."""

import numpy as np
import pytest

from repro.core import Prices
from repro.core.utility import (miner_utilities, miner_utility_gradients,
                                miner_utility_single, sp_profits, spending)


class TestSpending:
    def test_linear(self, prices):
        e = np.array([1.0, 2.0])
        c = np.array([3.0, 4.0])
        assert np.allclose(spending(e, c, prices), [5.0, 8.0])


class TestMinerUtilities:
    def test_definition(self, connected_params, prices):
        e = np.array([10.0, 10.0, 10.0, 10.0, 10.0])
        c = np.array([20.0, 20.0, 20.0, 20.0, 20.0])
        u = miner_utilities(e, c, connected_params, prices)
        from repro.core.winning import w_connected
        w = w_connected(e, c, 0.2, 0.8)
        expected = 1000.0 * w - (2.0 * e + 1.0 * c)
        assert np.allclose(u, expected)

    def test_single_matches_vector(self, connected_params, prices):
        e = np.array([5.0, 8.0, 2.0, 9.0, 4.0])
        c = np.array([10.0, 3.0, 7.0, 1.0, 6.0])
        u = miner_utilities(e, c, connected_params, prices)
        for i in range(5):
            assert miner_utility_single(i, e, c, connected_params,
                                        prices) == pytest.approx(float(u[i]))

    def test_gradients_match_finite_differences(self, connected_params,
                                                prices):
        e = np.array([5.0, 8.0, 2.0, 9.0, 4.0])
        c = np.array([10.0, 3.0, 7.0, 1.0, 6.0])
        du_de, du_dc = miner_utility_gradients(e, c, connected_params,
                                               prices)
        eps = 1e-6
        for i in range(5):
            e_hi = e.copy(); e_hi[i] += eps
            e_lo = e.copy(); e_lo[i] -= eps
            fd = (miner_utility_single(i, e_hi, c, connected_params, prices)
                  - miner_utility_single(i, e_lo, c, connected_params,
                                         prices)) / (2 * eps)
            assert du_de[i] == pytest.approx(fd, abs=1e-4)
            c_hi = c.copy(); c_hi[i] += eps
            c_lo = c.copy(); c_lo[i] -= eps
            fd = (miner_utility_single(i, e, c_hi, connected_params, prices)
                  - miner_utility_single(i, e, c_lo, connected_params,
                                         prices)) / (2 * eps)
            assert du_dc[i] == pytest.approx(fd, abs=1e-4)


class TestSPProfits:
    def test_definition(self, connected_params, prices):
        e = np.full(5, 10.0)
        c = np.full(5, 20.0)
        v_e, v_c = sp_profits(e, c, connected_params, prices)
        assert v_e == pytest.approx((2.0 - 0.2) * 50.0)
        assert v_c == pytest.approx((1.0 - 0.1) * 100.0)

    def test_zero_profile(self, connected_params, prices):
        z = np.zeros(5)
        assert sp_profits(z, z, connected_params, prices) == (0.0, 0.0)
