"""Semi-analytic miner best response vs an independent SLSQP optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize

from repro.core.miner_best_response import (BestResponse, ResponseContext,
                                            solve_best_response)
from repro.exceptions import ConfigurationError


def _utility(e, c, ctx, reward, beta, h, q_e, q_c):
    S = ctx.s_others + e + c
    E = ctx.e_others + e
    base = (1 - beta) * (e + c) / S if S > 0 else 0.0
    bonus = beta * h * e / E if E > 0 else 0.0
    return reward * (base + bonus) - q_e * e - q_c * c


def _slsqp_reference(ctx, reward, beta, h, p_e, p_c, budget, nu=0.0):
    """Multi-start SLSQP solution of the same program."""
    q_e = p_e + nu

    def neg(x):
        return -_utility(x[0], x[1], ctx, reward, beta, h, q_e, p_c)

    cons = [{"type": "ineq",
             "fun": lambda x: budget - p_e * x[0] - p_c * x[1]}]
    best_val, best_x = -np.inf, np.zeros(2)
    starts = [
        np.array([budget / (4 * p_e), budget / (4 * p_c)]),
        np.array([budget / (2 * p_e), 1e-6]),
        np.array([1e-6, budget / (2 * p_c)]),
        np.array([1e-3, 1e-3]),
    ]
    for x0 in starts:
        res = minimize(neg, x0, method="SLSQP",
                       bounds=[(0, None), (0, None)], constraints=cons,
                       options={"maxiter": 500, "ftol": 1e-14})
        if res.success and -res.fun > best_val:
            best_val, best_x = -res.fun, np.asarray(res.x)
    return best_val, best_x


class TestAgainstSLSQP:
    CASES = [
        # (e_others, s_others, reward, beta, h, p_e, p_c, budget, nu)
        (40.0, 160.0, 1000.0, 0.2, 0.8, 2.0, 1.0, 200.0, 0.0),
        (40.0, 160.0, 1000.0, 0.2, 0.8, 2.0, 1.0, 50.0, 0.0),    # binding
        (40.0, 160.0, 1000.0, 0.2, 1.0, 2.0, 1.0, 500.0, 3.0),   # with nu
        (5.0, 300.0, 1000.0, 0.3, 0.5, 3.0, 0.5, 100.0, 0.0),
        (100.0, 120.0, 500.0, 0.1, 1.0, 1.5, 1.2, 80.0, 0.0),
        (40.0, 160.0, 1000.0, 0.2, 0.8, 2.0, 1.9, 200.0, 0.0),   # near bound
        (40.0, 160.0, 1000.0, 0.2, 0.8, 1.0, 2.0, 200.0, 0.0),   # p_e < p_c
        (40.0, 160.0, 1000.0, 0.0, 0.8, 2.0, 1.0, 200.0, 0.0),   # beta 0
    ]

    @pytest.mark.parametrize("case", CASES)
    def test_matches_reference(self, case):
        e_o, s_o, reward, beta, h, p_e, p_c, budget, nu = case
        ctx = ResponseContext(e_others=e_o, s_others=s_o)
        br = solve_best_response(ctx, reward=reward, beta=beta, h=h,
                                 p_e=p_e, p_c=p_c, budget=budget, nu=nu)
        u_analytic = _utility(br.e, br.c, ctx, reward, beta, h,
                              p_e + nu, p_c)
        u_ref, x_ref = _slsqp_reference(ctx, reward, beta, h, p_e, p_c,
                                        budget, nu)
        # The analytic solution must be at least as good as SLSQP's.
        assert u_analytic >= u_ref - 1e-5 * max(abs(u_ref), 1.0)
        # And feasible.
        assert br.e >= -1e-12 and br.c >= -1e-12
        assert p_e * br.e + p_c * br.c <= budget * (1 + 1e-9)

    # e_others stays strictly positive: at ē = 0 the edge bonus is
    # discontinuous and its supremum is not attained (see the module
    # docstring of repro.core.miner_best_response); equilibrium iteration
    # never reaches that state for n >= 2.
    @given(st.floats(1.0, 300.0), st.floats(0.5, 300.0),
           st.floats(0.02, 0.6), st.floats(0.1, 1.0),
           st.floats(0.3, 4.0), st.floats(0.2, 3.0),
           st.floats(5.0, 500.0))
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_slsqp(self, s_extra, e_o, beta, h, p_e, p_c,
                                    budget):
        s_o = e_o + s_extra
        ctx = ResponseContext(e_others=e_o, s_others=s_o)
        br = solve_best_response(ctx, reward=800.0, beta=beta, h=h,
                                 p_e=p_e, p_c=p_c, budget=budget)
        u_analytic = _utility(br.e, br.c, ctx, 800.0, beta, h, p_e, p_c)
        u_ref, _ = _slsqp_reference(ctx, 800.0, beta, h, p_e, p_c, budget)
        assert u_analytic >= u_ref - 1e-4 * max(abs(u_ref), 1.0)


class TestStructure:
    def test_budget_binding_flag(self):
        ctx = ResponseContext(e_others=40.0, s_others=160.0)
        tight = solve_best_response(ctx, reward=1000.0, beta=0.2, h=0.8,
                                    p_e=2.0, p_c=1.0, budget=20.0)
        loose = solve_best_response(ctx, reward=1000.0, beta=0.2, h=0.8,
                                    p_e=2.0, p_c=1.0, budget=1e6)
        assert tight.budget_binding
        assert not loose.budget_binding
        assert tight.spending == pytest.approx(20.0, rel=1e-6)

    def test_nu_reduces_edge_demand(self):
        ctx = ResponseContext(e_others=40.0, s_others=160.0)
        base = solve_best_response(ctx, reward=1000.0, beta=0.2, h=1.0,
                                   p_e=2.0, p_c=1.0, budget=1e6)
        taxed = solve_best_response(ctx, reward=1000.0, beta=0.2, h=1.0,
                                    p_e=2.0, p_c=1.0, budget=1e6, nu=2.0)
        assert taxed.e < base.e

    def test_high_cloud_price_gives_edge_corner(self):
        ctx = ResponseContext(e_others=40.0, s_others=160.0)
        br = solve_best_response(ctx, reward=1000.0, beta=0.2, h=0.8,
                                 p_e=2.0, p_c=1.99, budget=1e6)
        assert br.c == 0.0
        assert br.e > 0.0

    def test_degenerate_opponents_give_zero(self):
        ctx = ResponseContext(e_others=0.0, s_others=0.0)
        br = solve_best_response(ctx, reward=1000.0, beta=0.2, h=0.8,
                                 p_e=2.0, p_c=1.0, budget=100.0)
        assert br.e == 0.0 and br.c == 0.0

    def test_cloud_only_opponents(self):
        # ē = 0: the smoothed model yields e = 0 (documented discontinuity).
        ctx = ResponseContext(e_others=0.0, s_others=100.0)
        br = solve_best_response(ctx, reward=1000.0, beta=0.2, h=0.8,
                                 p_e=2.0, p_c=1.0, budget=1e6)
        assert br.e == 0.0
        assert br.c > 0.0

    def test_beta_zero_buys_cheapest(self):
        ctx = ResponseContext(e_others=40.0, s_others=160.0)
        br = solve_best_response(ctx, reward=1000.0, beta=0.0, h=0.8,
                                 p_e=2.0, p_c=1.0, budget=1e6)
        assert br.e == 0.0
        assert br.c > 0.0


class TestValidation:
    def test_invalid_prices(self):
        ctx = ResponseContext(e_others=1.0, s_others=2.0)
        with pytest.raises(ConfigurationError):
            solve_best_response(ctx, reward=1.0, beta=0.1, h=1.0,
                                p_e=0.0, p_c=1.0, budget=1.0)

    def test_invalid_budget(self):
        ctx = ResponseContext(e_others=1.0, s_others=2.0)
        with pytest.raises(ConfigurationError):
            solve_best_response(ctx, reward=1.0, beta=0.1, h=1.0,
                                p_e=1.0, p_c=1.0, budget=0.0)

    def test_negative_nu(self):
        ctx = ResponseContext(e_others=1.0, s_others=2.0)
        with pytest.raises(ConfigurationError):
            solve_best_response(ctx, reward=1.0, beta=0.1, h=1.0,
                                p_e=1.0, p_c=1.0, budget=1.0, nu=-1.0)

    def test_context_validation(self):
        with pytest.raises(ConfigurationError):
            ResponseContext(e_others=-1.0, s_others=2.0)
        with pytest.raises(ConfigurationError):
            ResponseContext(e_others=5.0, s_others=2.0)

    def test_invalid_beta(self):
        ctx = ResponseContext(e_others=1.0, s_others=2.0)
        with pytest.raises(ConfigurationError):
            solve_best_response(ctx, reward=1.0, beta=1.0, h=1.0,
                                p_e=1.0, p_c=1.0, budget=1.0)
