"""The interior total ``S*`` is a mode-independent invariant.

Corollary 1 gives the per-miner interior total

    ``s* = e* + c* = (1 - β) R (n - 1) / (n² P_c)``

and the striking fact — load-bearing for the type-space compression
certificate — is that it depends on *neither* the edge mode, the hash
discount ``h``, nor a standalone capacity ``E_max`` (even a binding
one): the consistency condition that pins the total involves only the
cloud price, while ``h``, the edge premium and the capacity multiplier
``ν`` only move the edge/cloud *split*.  These tests assert the
numeric solvers reproduce that invariant exactly where the closed form
predicts it, across modes and kernels, on hypothesis-drawn parameter
points kept inside the interior (slack-budget, mixed-strategy) regime.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium,
                        solve_standalone_equilibrium)
from repro.core.closed_form import (binding_budget_threshold,
                                    corollary1_interior)
from repro.core.params import mixed_strategy_price_bound


def _interior_total(n, reward, beta, p_c):
    """Per-miner ``s* = (1 - β) R (n - 1) / (n² P_c)``."""
    return (1.0 - beta) * reward * (n - 1) / (n * n * p_c)


def _interior_game(n, reward, beta, h, p_e, p_c_frac, mode, e_max=None):
    """A homogeneous game pinned inside the interior regime."""
    p_c = p_c_frac * min(p_e, mixed_strategy_price_bound(beta, h, p_e))
    prices = Prices(p_e=p_e, p_c=p_c)
    budget = 10.0 * binding_budget_threshold(n, reward, beta, h)
    kwargs = {"reward": reward, "fork_rate": beta}
    if mode is EdgeMode.STANDALONE:
        kwargs.update(mode=mode, e_max=e_max)
    else:
        kwargs.update(h=h)
    return homogeneous(n, budget, **kwargs), prices


# Narrow-but-representative draws: the invariant is exact everywhere in
# the interior regime, so breadth matters more than extremity.
_BETA = st.floats(0.05, 0.5)
_H = st.floats(0.3, 1.0)
_PE = st.floats(1.5, 3.0)
_PCF = st.floats(0.3, 0.9)
_N = st.integers(3, 24)
_REWARD = st.floats(200.0, 5000.0)


class TestConnectedInvariant:
    @given(n=_N, reward=_REWARD, beta=_BETA, h=_H, p_e=_PE,
           p_c_frac=_PCF)
    @settings(max_examples=40, deadline=None)
    def test_total_is_h_independent(self, n, reward, beta, h, p_e,
                                    p_c_frac):
        params, prices = _interior_game(n, reward, beta, h, p_e,
                                        p_c_frac, EdgeMode.CONNECTED)
        eq = solve_connected_equilibrium(params, prices,
                                         kernel="vectorized")
        assert eq.converged
        want = n * _interior_total(n, reward, beta, prices.p_c)
        assert eq.total == pytest.approx(want, rel=1e-6)
        # And it is exactly the closed form's total, per miner.
        cf = corollary1_interior(n, reward, beta, h, prices)
        assert eq.total / n == pytest.approx(cf.e + cf.c, rel=1e-6)

    @given(n=st.integers(3, 10), beta=_BETA, h=_H, p_c_frac=_PCF)
    @settings(max_examples=15, deadline=None)
    def test_scalar_kernel_agrees(self, n, beta, h, p_c_frac):
        params, prices = _interior_game(n, 1000.0, beta, h, 2.0,
                                        p_c_frac, EdgeMode.CONNECTED)
        eq = solve_connected_equilibrium(params, prices,
                                         kernel="scalar")
        want = n * _interior_total(n, 1000.0, beta, prices.p_c)
        assert eq.total == pytest.approx(want, rel=1e-6)


class TestStandaloneInvariant:
    @given(n=st.integers(3, 12), reward=_REWARD, beta=_BETA, p_e=_PE,
           p_c_frac=_PCF)
    @settings(max_examples=20, deadline=None)
    def test_slack_capacity_matches_connected_total(self, n, reward,
                                                    beta, p_e,
                                                    p_c_frac):
        # Standalone mode fixes h = 1; with a slack E_max the solve
        # must land on the same interior total as connected h = 1.
        want = n * _interior_total(n, reward, beta,
                                   p_c_frac * min(
                                       p_e, mixed_strategy_price_bound(
                                           beta, 1.0, p_e)))
        params, prices = _interior_game(
            n, reward, beta, 1.0, p_e, p_c_frac, EdgeMode.STANDALONE,
            e_max=10.0 * want)
        eq = solve_standalone_equilibrium(params, prices,
                                          kernel="vectorized")
        assert eq.converged
        assert eq.nu == 0.0
        assert eq.total == pytest.approx(want, rel=1e-6)

    @given(n=st.integers(3, 12), beta=_BETA, p_c_frac=_PCF)
    @settings(max_examples=15, deadline=None)
    def test_binding_capacity_moves_split_not_total(self, n, beta,
                                                    p_c_frac):
        # A binding E_max prices edge via ν > 0: the edge/cloud split
        # shifts toward cloud, but the invariant total survives —
        # the capacity multiplier never enters the total's fixed point.
        reward, p_e = 1000.0, 2.0
        free_params, prices = _interior_game(
            n, reward, beta, 1.0, p_e, p_c_frac, EdgeMode.STANDALONE,
            e_max=1e9)
        free = solve_standalone_equilibrium(free_params, prices,
                                            kernel="vectorized")
        if free.total_edge <= 1e-9:
            return  # degenerate draw: no edge demand to constrain
        capped_params, _ = _interior_game(
            n, reward, beta, 1.0, p_e, p_c_frac, EdgeMode.STANDALONE,
            e_max=0.5 * free.total_edge)
        eq = solve_standalone_equilibrium(capped_params, prices,
                                          kernel="vectorized")
        assert eq.converged
        assert eq.nu > 0.0
        assert eq.total_edge <= 0.5 * free.total_edge * (1 + 1e-6)
        want = n * _interior_total(n, reward, beta, prices.p_c)
        assert eq.total == pytest.approx(want, rel=1e-6)
        assert eq.total == pytest.approx(free.total, rel=1e-6)
