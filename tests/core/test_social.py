"""Social-welfare analysis."""

import numpy as np
import pytest

from repro.core import (Prices, captured_reward, homogeneous,
                        rent_dissipation, social_welfare,
                        solve_connected_equilibrium, welfare_report)


class TestSocialWelfare:
    def test_accounting_identity(self, connected_params, prices):
        """SW == miner surplus + SP profits, at any profile."""
        eq = solve_connected_equilibrium(connected_params, prices)
        rep = welfare_report(eq)
        assert rep.transfers_balance == pytest.approx(0.0, abs=1e-8)

    def test_identity_off_equilibrium(self, connected_params, prices):
        from repro.core.nep import MinerEquilibrium
        from repro.game.diagnostics import ConvergenceReport
        e = np.array([5.0, 10.0, 15.0, 20.0, 25.0])
        c = np.array([30.0, 25.0, 20.0, 15.0, 10.0])
        eq = MinerEquilibrium(e=e, c=c, params=connected_params,
                              prices=prices,
                              report=ConvergenceReport(True, 0, 0, 1))
        assert welfare_report(eq).transfers_balance == pytest.approx(
            0.0, abs=1e-8)

    def test_captured_reward_connected_shortfall(self, connected_params):
        """Σ W_i = 1 - β(1-h) in connected mode."""
        e = np.full(5, 10.0)
        c = np.full(5, 20.0)
        captured = captured_reward(e, c, connected_params)
        expected = 1000.0 * (1.0 - 0.2 * (1.0 - 0.8))
        assert captured == pytest.approx(expected)

    def test_captured_reward_full_at_h1(self, prices):
        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=1.0)
        e = np.full(5, 10.0)
        c = np.full(5, 20.0)
        assert captured_reward(e, c, params) == pytest.approx(1000.0)

    def test_empty_profile(self, connected_params):
        z = np.zeros(5)
        assert social_welfare(z, z, connected_params) == 0.0

    def test_dissipation_grows_with_costs(self, prices):
        cheap = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=1.0,
                            edge_cost=0.1, cloud_cost=0.05)
        dear = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=1.0,
                           edge_cost=0.5, cloud_cost=0.25)
        e = np.full(5, 10.0)
        c = np.full(5, 20.0)
        assert rent_dissipation(e, c, dear) > rent_dissipation(e, c, cheap)

    def test_planner_limit(self, prices):
        """Tiny edge-only mining approaches zero dissipation."""
        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
                             h=1.0, edge_cost=0.2, cloud_cost=0.1)
        e = np.full(5, 1e-6)
        c = np.zeros(5)
        assert rent_dissipation(e, c, params) == pytest.approx(0.0,
                                                               abs=1e-5)

    def test_report_fields_consistent(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        rep = welfare_report(eq)
        assert rep.social_welfare == pytest.approx(
            rep.captured_reward - rep.edge_resource_cost
            - rep.cloud_resource_cost)
        assert 0.0 < rep.dissipation < 1.0
