"""Full Stackelberg solves (Algorithms 1/2 and the Theorem-4 scheme)."""

import pytest

from repro.core import (EdgeMode, Prices, homogeneous, solve_stackelberg,
                        table2_standalone, verify_sp_equilibrium)


class TestConnected:
    def test_auto_scheme_converges(self, binding_params):
        se = solve_stackelberg(binding_params, tol=1e-5)
        assert se.scheme == "esp-anticipates"
        assert se.converged
        assert se.prices.p_e > se.prices.p_c
        assert se.v_e > 0 and se.v_c > 0

    def test_simultaneous_best_response_cycles(self, binding_params):
        """The connected simultaneous leader game has no pure NE: the ESP
        replies with the pure-edge kink, the CSP undercuts, and the
        iteration cycles (see EXPERIMENTS.md). The solver must report the
        non-convergence honestly."""
        se = solve_stackelberg(binding_params, scheme="best-response",
                               tol=1e-6, max_iter=30)
        assert not se.converged

    def test_followers_at_equilibrium(self, binding_params):
        from repro.core import verify_miner_equilibrium
        se = solve_stackelberg(binding_params, tol=1e-5)
        assert verify_miner_equilibrium(se.miners, rel_tol=1e-4)

    def test_esp_anticipates_scheme(self, binding_params):
        se = solve_stackelberg(binding_params, scheme="esp-anticipates")
        assert se.scheme == "esp-anticipates"
        assert se.prices.p_e > se.prices.p_c

    def test_unknown_scheme_rejected(self, binding_params):
        with pytest.raises(ValueError):
            solve_stackelberg(binding_params, scheme="nope")

    def test_summary_contains_prices(self, binding_params):
        se = solve_stackelberg(binding_params, tol=1e-5)
        assert "P_e=" in se.summary()


class TestStandalone:
    def test_price_bargaining_converges(self):
        params = homogeneous(5, 100.0, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=30.0,
                             edge_cost=0.2, cloud_cost=0.1)
        se = solve_stackelberg(params, tol=1e-4)
        assert se.prices.p_e > se.prices.p_c
        assert se.miners.total_edge <= 30.0 * (1 + 1e-6)

    def test_matches_table2_closed_form(self):
        """Sufficient budgets: the anticipating SE tracks Table II, with
        the ESP shading its price slightly below the clearing point (the
        CSP undercuts discontinuously right at clearing — see
        EXPERIMENTS.md)."""
        params = homogeneous(5, 10000.0, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=80.0,
                             edge_cost=0.2, cloud_cost=0.1)
        se = solve_stackelberg(params, scheme="esp-anticipates",
                               price_xatol=1e-7)
        cf = table2_standalone(5, 1000.0, 0.2, 80.0, 0.2, 0.1)
        assert se.prices.p_c == pytest.approx(cf.prices.p_c, rel=0.02)
        assert se.prices.p_e == pytest.approx(cf.prices.p_e, rel=0.05)
        assert se.prices.p_e <= cf.prices.p_e * (1 + 1e-6)
        assert se.miners.e[0] == pytest.approx(cf.miner.e, rel=0.05)


class TestVerification:
    def test_equilibrium_passes_deviation_scan(self, binding_params):
        se = solve_stackelberg(binding_params, tol=1e-6,
                               price_xatol=1e-8)
        ok, worst = verify_sp_equilibrium(se, grid=21, span=0.3)
        assert ok, f"profitable deviation of {worst:.3%} found"

    def test_perturbed_prices_fail_scan(self, binding_params):
        se = solve_stackelberg(binding_params, tol=1e-6, price_xatol=1e-8)
        from repro.core.stackelberg import StackelbergEquilibrium
        bad = StackelbergEquilibrium(
            prices=Prices(se.prices.p_e * 2.5, se.prices.p_c * 0.3),
            miners=se.miners, v_e=0.0, v_c=0.0, report=se.report,
            scheme=se.scheme)
        ok, worst = verify_sp_equilibrium(bad, grid=21, span=0.4)
        assert not ok
        assert worst > 0
