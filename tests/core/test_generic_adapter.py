"""Generic-game adapter vs the specialized NEP solver."""

import numpy as np
import pytest

from repro.core import solve_connected_equilibrium
from repro.core.generic_adapter import (MinerPlayer, OpponentAggregates,
                                        build_miner_game,
                                        solve_via_generic)
from repro.game.best_response import BestResponseOptions


class TestMinerPlayer:
    def test_payoff_matches_utility_module(self, connected_params, prices):
        from repro.core.utility import miner_utilities
        player = MinerPlayer(0, connected_params, prices)
        e = np.array([10.0, 12.0, 8.0, 9.0, 11.0])
        c = np.array([30.0, 25.0, 35.0, 28.0, 32.0])
        ctx = OpponentAggregates(
            e_others=float(e[1:].sum()),
            s_others=float(e[1:].sum() + c[1:].sum()))
        expected = float(miner_utilities(e, c, connected_params,
                                         prices)[0])
        assert player.payoff(np.array([e[0], c[0]]),
                             ctx) == pytest.approx(expected)

    def test_gradient_matches_finite_difference(self, connected_params,
                                                prices):
        player = MinerPlayer(0, connected_params, prices)
        ctx = OpponentAggregates(e_others=40.0, s_others=160.0)
        x = np.array([10.0, 30.0])
        grad = player.payoff_gradient(x, ctx)
        eps = 1e-6
        for j in range(2):
            hi = x.copy(); hi[j] += eps
            lo = x.copy(); lo[j] -= eps
            fd = (player.payoff(hi, ctx) - player.payoff(lo, ctx)) / (2 * eps)
            assert grad[j] == pytest.approx(fd, abs=1e-4)

    def test_best_response_feasible(self, connected_params, prices):
        player = MinerPlayer(2, connected_params, prices)
        ctx = OpponentAggregates(e_others=40.0, s_others=160.0)
        br = player.best_response(ctx)
        assert player.space.contains(br, tol=1e-6)


class TestCrossValidation:
    def test_generic_matches_specialized(self, connected_params, prices):
        generic = solve_via_generic(connected_params, prices)
        special = solve_connected_equilibrium(connected_params, prices)
        assert generic.converged
        assert np.allclose(generic.e, special.e, atol=1e-5)
        assert np.allclose(generic.c, special.c, atol=1e-5)

    def test_heterogeneous(self, heterogeneous_params, prices):
        generic = solve_via_generic(heterogeneous_params, prices)
        special = solve_connected_equilibrium(heterogeneous_params, prices)
        assert np.allclose(generic.e, special.e, atol=1e-5)

    def test_gradient_fallback_reaches_same_ne(self, connected_params,
                                               prices):
        """Without analytic best responses the generic solver falls back
        to projected gradient ascent and still finds the unique NE."""
        opts = BestResponseOptions(tol=1e-6, damping=0.5, max_iter=300)
        generic = solve_via_generic(connected_params, prices,
                                    options=opts, use_analytic_br=False)
        special = solve_connected_equilibrium(connected_params, prices)
        assert np.allclose(generic.e, special.e, atol=0.05)
        assert np.allclose(generic.c, special.c, atol=0.2)

    def test_result_supports_downstream_tools(self, connected_params,
                                              prices):
        from repro.core import verify_miner_equilibrium, welfare_report
        generic = solve_via_generic(connected_params, prices)
        assert verify_miner_equilibrium(generic)
        assert welfare_report(generic).transfers_balance == pytest.approx(
            0.0, abs=1e-6)
