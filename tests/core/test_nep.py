"""Connected-mode miner subgame: Theorem 2 (existence/uniqueness) and the
closed-form cross-checks of Section IV-B."""

import numpy as np
import pytest

from repro.core import (Prices, corollary1_interior, homogeneous,
                        solve_connected_equilibrium, theorem3_binding,
                        verify_miner_equilibrium)
from repro.core.nep import best_response_profile, initial_profile
from repro.exceptions import ConvergenceError


class TestConvergence:
    def test_converges_from_default_start(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        assert eq.converged
        assert eq.total > 0

    def test_uniqueness_across_starts(self, connected_params, prices, rng):
        """Theorem 2: the NE is unique — random starts agree."""
        reference = None
        budgets = connected_params.budget_array
        for _ in range(5):
            e0 = rng.uniform(0.5, 20.0, connected_params.n)
            c0 = rng.uniform(0.5, 40.0, connected_params.n)
            # Stay within budgets.
            spend = prices.p_e * e0 + prices.p_c * c0
            scale = np.minimum(budgets / spend, 1.0)
            eq = solve_connected_equilibrium(connected_params, prices,
                                             initial=(e0 * scale,
                                                      c0 * scale))
            assert eq.converged
            if reference is None:
                reference = (eq.e.copy(), eq.c.copy())
            else:
                assert np.allclose(eq.e, reference[0], atol=1e-5)
                assert np.allclose(eq.c, reference[1], atol=1e-5)

    def test_large_budget_does_not_collapse(self, prices):
        params = homogeneous(5, 1e6, reward=1000.0, fork_rate=0.2, h=0.8)
        eq = solve_connected_equilibrium(params, prices)
        assert eq.converged
        assert eq.total_edge > 1.0

    def test_raise_on_failure(self, connected_params, prices):
        with pytest.raises(ConvergenceError):
            solve_connected_equilibrium(connected_params, prices,
                                        tol=1e-16, max_iter=2,
                                        raise_on_failure=True)

    def test_invalid_damping(self, connected_params, prices):
        with pytest.raises(ValueError):
            solve_connected_equilibrium(connected_params, prices,
                                        damping=0.0)

    def test_wrong_initial_shape(self, connected_params, prices):
        with pytest.raises(ValueError):
            solve_connected_equilibrium(connected_params, prices,
                                        initial=(np.ones(3), np.ones(3)))


class TestClosedFormAgreement:
    def test_interior_matches_corollary1(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        cf = corollary1_interior(5, 1000.0, 0.2, 0.8, prices)
        assert np.allclose(eq.e, cf.e, rtol=1e-6)
        assert np.allclose(eq.c, cf.c, rtol=1e-6)

    def test_binding_matches_theorem3(self, binding_params, prices):
        eq = solve_connected_equilibrium(binding_params, prices)
        cf = theorem3_binding(5, 100.0, 0.2, 0.8, prices)
        assert np.allclose(eq.e, cf.e, rtol=1e-5)
        assert np.allclose(eq.c, cf.c, rtol=1e-5)
        assert np.allclose(eq.spending, 100.0, rtol=1e-6)


class TestEquilibriumProperties:
    def test_no_profitable_deviation(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        assert verify_miner_equilibrium(eq)

    def test_no_profitable_deviation_heterogeneous(self,
                                                   heterogeneous_params,
                                                   prices):
        eq = solve_connected_equilibrium(heterogeneous_params, prices)
        assert eq.converged
        assert verify_miner_equilibrium(eq)

    def test_budgets_respected(self, heterogeneous_params, prices):
        eq = solve_connected_equilibrium(heterogeneous_params, prices)
        assert np.all(eq.spending
                      <= heterogeneous_params.budget_array * (1 + 1e-9))

    def test_richer_miner_requests_more(self, heterogeneous_params, prices):
        """Fig. 7's monotonicity: requests grow with budget while budgets
        bind."""
        eq = solve_connected_equilibrium(heterogeneous_params, prices)
        totals = eq.e + eq.c
        binding = eq.spending >= heterogeneous_params.budget_array - 1e-6
        # Among budget-bound miners, richer => strictly more units.
        bound_totals = totals[binding]
        assert np.all(np.diff(bound_totals) > -1e-9)

    def test_summary_mentions_mode(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        assert "connected" in eq.summary()

    def test_derived_quantities(self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        assert eq.total == pytest.approx(eq.total_edge + eq.total_cloud)
        v_e, v_c = eq.sp_profits
        assert v_e == pytest.approx(
            (prices.p_e - 0.2) * eq.total_edge)
        assert v_c == pytest.approx(
            (prices.p_c - 0.1) * eq.total_cloud)


class TestSweeps:
    def test_higher_cloud_price_shifts_to_edge(self, connected_params):
        """Fig. 4 shape: raising P_c monotonically raises E*."""
        previous = -np.inf
        for p_c in (0.6, 0.9, 1.2, 1.5):
            eq = solve_connected_equilibrium(connected_params,
                                             Prices(2.0, p_c))
            assert eq.total_edge > previous
            previous = eq.total_edge

    def test_higher_fork_rate_cuts_cloud(self, prices):
        """Fig. 5 shape: larger β reduces cloud units sold."""
        previous = np.inf
        for beta in (0.05, 0.15, 0.25, 0.35):
            params = homogeneous(5, 200.0, reward=1000.0, fork_rate=beta,
                                 h=0.8)
            eq = solve_connected_equilibrium(params, prices)
            assert eq.total_cloud < previous
            previous = eq.total_cloud

    def test_lower_h_discourages_edge(self, prices):
        """Connected mode discourages ESP purchases as transfers rise."""
        previous = -np.inf
        for h in (0.2, 0.5, 0.8, 1.0):
            params = homogeneous(5, 2000.0, reward=1000.0, fork_rate=0.2,
                                 h=h)
            eq = solve_connected_equilibrium(params, prices)
            assert eq.total_edge > previous
            previous = eq.total_edge


class TestHelpers:
    def test_initial_profile_feasible(self, connected_params, prices):
        e, c = initial_profile(connected_params, prices)
        spend = prices.p_e * e + prices.p_c * c
        assert np.all(spend <= connected_params.budget_array + 1e-9)
        assert np.all(e > 0) and np.all(c > 0)

    def test_best_response_profile_jacobi_vs_gs_fixed_point(
            self, connected_params, prices):
        eq = solve_connected_equilibrium(connected_params, prices)
        e_gs, c_gs = best_response_profile(eq.e, eq.c, connected_params,
                                           prices, sweep="gauss-seidel")
        e_j, c_j = best_response_profile(eq.e, eq.c, connected_params,
                                         prices, sweep="jacobi")
        # At the fixed point both sweeps return (approximately) the input.
        assert np.allclose(e_gs, eq.e, atol=1e-6)
        assert np.allclose(e_j, eq.e, atol=1e-6)
        assert np.allclose(c_j, eq.c, atol=1e-6)


class TestAutoKernel:
    def test_resolve_kernel_crossover(self):
        from repro.core.nep import AUTO_VECTORIZED_MIN_N, resolve_kernel
        assert resolve_kernel("auto", AUTO_VECTORIZED_MIN_N - 1) == \
            "running"
        assert resolve_kernel("auto", AUTO_VECTORIZED_MIN_N) == \
            "vectorized"
        # Explicit kernels pass through unchanged at every size.
        for kernel in ("scalar", "running", "vectorized"):
            assert resolve_kernel(kernel, 2) == kernel
            assert resolve_kernel(kernel, 10_000) == kernel
        with pytest.raises(ValueError):
            resolve_kernel("simd", 8)

    def test_auto_matches_resolved_kernel(self, prices):
        from repro.core.nep import AUTO_VECTORIZED_MIN_N
        small = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
                            h=0.8)
        big = homogeneous(AUTO_VECTORIZED_MIN_N + 4, 200.0,
                          reward=1000.0, fork_rate=0.2, h=0.8)
        for params, resolved in ((small, "running"),
                                 (big, "vectorized")):
            auto = solve_connected_equilibrium(params, prices,
                                               kernel="auto")
            direct = solve_connected_equilibrium(params, prices,
                                                 kernel=resolved)
            np.testing.assert_array_equal(auto.e, direct.e)
            np.testing.assert_array_equal(auto.c, direct.c)

    def test_auto_choice_visible_in_telemetry(self, prices):
        from repro.telemetry import telemetry_session
        params = homogeneous(25, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        with telemetry_session() as tel:
            solve_connected_equilibrium(params, prices, kernel="auto")
        snap = tel.metrics.snapshot()
        labels = {tuple(sorted(v["labels"].items()))
                  for v in snap["br_sweep_seconds"]["values"]}
        assert (("kernel", "auto:vectorized"),) in labels
