"""Demand oracle and SP best-response pricing."""

import numpy as np
import pytest

from repro.core import (DemandOracle, Prices, csp_best_response,
                        esp_best_response, homogeneous)
from repro.exceptions import ConfigurationError, InfeasibleGameError


class TestDemandOracle:
    def test_caches_repeated_queries(self, connected_params, prices):
        oracle = DemandOracle(connected_params)
        oracle.equilibrium(prices)
        n0 = oracle.evaluations
        oracle.equilibrium(prices)
        assert oracle.evaluations == n0

    def test_fast_path_used_for_homogeneous(self, connected_params, prices):
        oracle = DemandOracle(connected_params)
        eq = oracle.equilibrium(prices)
        assert "closed form" in (eq.report.message or "")

    def test_slow_path_matches_fast(self, connected_params, prices):
        fast = DemandOracle(connected_params, fast=True)
        slow = DemandOracle(connected_params, fast=False)
        assert fast.edge_demand(prices) == pytest.approx(
            slow.edge_demand(prices), rel=1e-5)
        assert fast.cloud_demand(prices) == pytest.approx(
            slow.cloud_demand(prices), rel=1e-5)

    def test_heterogeneous_uses_numeric(self, heterogeneous_params, prices):
        oracle = DemandOracle(heterogeneous_params)
        assert not oracle.fast
        eq = oracle.equilibrium(prices)
        assert eq.converged

    def test_fast_forced_on_heterogeneous_rejected(self,
                                                   heterogeneous_params):
        with pytest.raises(ConfigurationError):
            DemandOracle(heterogeneous_params, fast=True)

    def test_profit_definitions(self, connected_params, prices):
        oracle = DemandOracle(connected_params)
        v_e = oracle.esp_profit(prices)
        v_c = oracle.csp_profit(prices)
        assert v_e == pytest.approx(
            (prices.p_e - 0.2) * oracle.edge_demand(prices))
        assert v_c == pytest.approx(
            (prices.p_c - 0.1) * oracle.cloud_demand(prices))


class TestESPBestResponse:
    def test_interior_optimum(self, binding_params):
        oracle = DemandOracle(binding_params)
        p_e = esp_best_response(oracle, p_c=1.0)
        v_star = oracle.esp_profit(Prices(p_e, 1.0))
        for f in (0.9, 0.97, 1.03, 1.1):
            cand = p_e * f
            if cand > 1.0:
                assert oracle.esp_profit(Prices(cand, 1.0)) <= \
                    v_star * (1 + 1e-5)

    def test_capped_when_cloud_below_cost(self, binding_params):
        """P_c <= C_e: profit rises toward its asymptote; the search
        returns the capped optimum instead of erroring."""
        oracle = DemandOracle(binding_params)
        p_e = esp_best_response(oracle, p_c=0.15, max_expansions=6)
        assert p_e > 1.0  # pushed far right


class TestCSPBestResponse:
    def test_interior_optimum(self, binding_params):
        oracle = DemandOracle(binding_params)
        p_c = csp_best_response(oracle, p_e=2.0)
        v_star = oracle.csp_profit(Prices(2.0, p_c))
        for f in (0.9, 0.97, 1.03, 1.1):
            cand = p_c * f
            if 0 < cand < 2.0:
                assert oracle.csp_profit(Prices(2.0, cand)) <= \
                    v_star * (1 + 1e-5)

    def test_never_above_esp_price(self, binding_params):
        oracle = DemandOracle(binding_params)
        p_c = csp_best_response(oracle, p_e=2.0)
        assert p_c < 2.0

    def test_infeasible_when_esp_below_cloud_cost(self, binding_params):
        oracle = DemandOracle(binding_params)
        with pytest.raises(InfeasibleGameError):
            csp_best_response(oracle, p_e=0.05)


class TestBatchedEquilibria:
    def _grid(self, count=10):
        return [Prices(2.0 + 0.05 * k, 1.0 + 0.02 * k)
                for k in range(count)]

    def test_grid_matches_per_point(self, heterogeneous_params):
        batched = DemandOracle(heterogeneous_params,
                               kernel="vectorized")
        loop = DemandOracle(heterogeneous_params, kernel="vectorized")
        grid = self._grid()
        for a, p in zip(batched.equilibria(grid), grid):
            b = loop.equilibrium(p)
            np.testing.assert_array_equal(a.e, b.e)
            np.testing.assert_array_equal(a.c, b.c)
        assert batched.evaluations == loop.evaluations

    def test_grid_admits_to_cache(self, heterogeneous_params):
        oracle = DemandOracle(heterogeneous_params, kernel="vectorized")
        grid = self._grid()
        oracle.equilibria(grid)
        before = oracle.evaluations
        oracle.equilibria(grid)          # pure memo hits
        oracle.equilibrium(grid[0])      # so is a point query
        assert oracle.evaluations == before

    def test_scalar_kernel_falls_back_per_point(self,
                                                heterogeneous_params):
        oracle = DemandOracle(heterogeneous_params, kernel="scalar")
        grid = self._grid(4)
        results = oracle.equilibria(grid)
        ref = DemandOracle(heterogeneous_params, kernel="scalar")
        for a, p in zip(results, grid):
            b = ref.equilibrium(p)
            np.testing.assert_array_equal(a.e, b.e)

    def test_closed_form_oracle_unaffected(self, connected_params):
        # Homogeneous games answer from the closed forms; the grid API
        # must route through them identically.
        oracle = DemandOracle(connected_params)
        grid = self._grid(4)
        for a, p in zip(oracle.equilibria(grid), grid):
            b = DemandOracle(connected_params).equilibrium(p)
            np.testing.assert_array_equal(a.e, b.e)
