"""Differential testing: independent implementations must agree.

Three cross-checks, each pitting a numerical solver against a second,
independently-derived source of truth:

* the connected-mode NEP solver against the paper's closed forms
  (Theorem 3 / Corollary 1) over hypothesis-randomized parameter draws;
* the standalone-mode GNEP decomposition against the extragradient VI
  solver (two unrelated algorithms, one variational equilibrium);
* ``solve_stackelberg`` reached directly against the same solve routed
  through the serving engine (cache, keys, guard, batch machinery).

The point comparisons live in :mod:`repro.control.verify` — the same
battery the control plane's verifier dry-runs before applying any
remediation — so this suite and the runtime verification can never
drift apart. The hypothesis layers here sweep those shared checks over
randomized parameter draws.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.control.verify import (check_connected_closed_form,
                                  check_serving_matches_direct,
                                  check_standalone_cross_solver,
                                  run_golden_checks)
from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium)
from repro.core.closed_form import (binding_budget_threshold,
                                    homogeneous_miner_equilibrium)
from repro.core.params import mixed_strategy_price_bound
from repro.serving import ScenarioSpec, ServingEngine


def _feasible(beta, h, prices):
    """The Theorem-3 mixed-strategy region with a safety margin."""
    bound = mixed_strategy_price_bound(beta, h, prices.p_e)
    return (prices.p_e > prices.p_c * 1.05
            and prices.p_c < 0.9 * bound)


class TestClosedFormVsNepSolver:
    """Connected NEP solver == Theorem 3 / Corollary 1 closed forms."""

    @given(n=st.integers(min_value=2, max_value=12),
           budget=st.floats(min_value=20.0, max_value=2000.0),
           reward=st.floats(min_value=200.0, max_value=5000.0),
           beta=st.floats(min_value=0.05, max_value=0.45),
           h=st.floats(min_value=0.4, max_value=1.0),
           p_c=st.floats(min_value=0.4, max_value=1.5),
           premium=st.floats(min_value=0.3, max_value=2.5))
    @settings(max_examples=40, deadline=None)
    def test_equilibrium_matches_closed_form(self, n, budget, reward,
                                             beta, h, p_c, premium):
        prices = Prices(p_e=p_c + premium, p_c=p_c)
        assume(_feasible(beta, h, prices))
        # Stay clearly inside one regime: solver/closed-form agreement
        # right at the binding threshold is a measure-zero edge case.
        threshold = binding_budget_threshold(n, reward, beta, h)
        assume(abs(budget - threshold) > 0.05 * threshold)

        closed = homogeneous_miner_equilibrium(n, budget, reward, beta,
                                               h, prices)
        assume(closed.e > 1e-3 and closed.c > 1e-3)

        params = homogeneous(n, budget, reward=reward, fork_rate=beta,
                             h=h)
        result = check_connected_closed_form(params=params,
                                             prices=prices)
        assert result.ok, f"{result.detail} (err {result.max_error:g})"

    @given(budget=st.floats(min_value=30.0, max_value=120.0))
    @settings(max_examples=15, deadline=None)
    def test_binding_regime_spends_whole_budget(self, budget):
        n, reward, beta, h = 5, 1000.0, 0.2, 0.8
        prices = Prices(p_e=2.0, p_c=1.0)
        assume(budget < 0.95 * binding_budget_threshold(n, reward, beta,
                                                        h))
        closed = homogeneous_miner_equilibrium(n, budget, reward, beta,
                                               h, prices)
        assert closed.regime == "binding"
        params = homogeneous(n, budget, reward=reward, fork_rate=beta,
                             h=h)
        eq = solve_connected_equilibrium(params, prices)
        np.testing.assert_allclose(eq.spending, np.full(n, budget),
                                   rtol=1e-6)
        assert eq.e[0] == pytest.approx(closed.e, rel=1e-5)
        result = check_connected_closed_form(params=params,
                                             prices=prices)
        assert result.ok
        assert result.detail == "regime=binding"


class TestGnepCrossSolver:
    """Decomposition and extragradient find the same variational eq."""

    @given(e_max=st.floats(min_value=30.0, max_value=200.0),
           budget=st.floats(min_value=400.0, max_value=2000.0))
    @settings(max_examples=10, deadline=None)
    def test_decomposition_matches_extragradient(self, e_max, budget):
        params = homogeneous(5, budget, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=e_max)
        result = check_standalone_cross_solver(params=params)
        assert result.ok, f"{result.detail} (err {result.max_error:g})"


class TestDirectVsServingEngine:
    """The serving engine returns exactly what the direct call returns."""

    @pytest.mark.parametrize("n,budget,h", [
        (5, 200.0, 0.8),
        (5, 1000.0, 0.6),
        (8, 150.0, 0.9),
    ])
    def test_connected_stackelberg_profits_agree(self, n, budget, h):
        params = homogeneous(n, budget, reward=1000.0, fork_rate=0.2,
                             h=h)
        result = check_serving_matches_direct(params=params)
        assert result.ok, f"{result.detail} (err {result.max_error:g})"

    def test_miner_stage_via_engine_matches_direct(self):
        params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        prices = Prices(p_e=2.0, p_c=1.0)
        direct = solve_connected_equilibrium(params, prices)
        engine = ServingEngine(warm_start=False, use_guard=False)
        result = engine.serve(ScenarioSpec(params=params, prices=prices))
        assert result.ok
        np.testing.assert_allclose(result.value.e, direct.e, rtol=1e-9)
        np.testing.assert_allclose(result.value.c, direct.c, rtol=1e-9)


class TestGoldenBattery:
    """The full verifier battery — what the control plane dry-runs —
    must hold on every kernel, straight from the importable module."""

    @pytest.mark.parametrize("kernel",
                             ["scalar", "running", "vectorized"])
    def test_all_golden_checks_pass(self, kernel):
        results = run_golden_checks(kernel)
        failed = [r for r in results if not r.ok]
        assert not failed, [(r.name, r.detail) for r in failed]
